// Sharded parallel discrete-event engine with deterministic merge.
//
// A ShardEngine runs S independent Simulators ("shards") in lockstep windows
// on up to T worker threads. The design target is not best-effort parallelism
// but *bit-for-bit determinism across thread counts*: a run with shards=S is
// byte-identical whether it executes on 1 thread or N, because the logical
// schedule — which events fire, in what order, and how cross-shard messages
// interleave — depends only on S, never on T.
//
// Conservative lookahead (DESIGN.md §6h). Every cross-shard interaction in
// Tiger goes through the Network, whose minimum delivery delay is
// base_latency (L). The engine advances all shards through a window (C, H]
// with H − C ≤ W ≤ L: a message sent at time s > C arrives at s + delay ≥
// s + L > C + L ≥ H, i.e. strictly after the window, so shards cannot
// observe each other mid-window and may run concurrently. W is the largest
// divisor of 1 ms that is ≤ L (L = 300 µs today → W = 250 µs), so every
// millisecond-multiple cadence in the system (time-series sampling, audit
// ticks) lands exactly on a window barrier. Windows that contain no work are
// skipped: the next barrier jumps to the earliest pending event or task due,
// aligned up to the W grid — the alignment keeps the safety bound, since
// AlignUp(T) < T + W ≤ T + L.
//
// Epoch fallback. If configured lookahead shrinks below the smallest usable
// window, the engine still makes progress: W floors at kMinWindow and any
// cross-shard post whose arrival would land inside the already-executed
// window is clamped to the barrier instant and counted in clamped_posts().
// In normal operation (delay ≥ L ≥ W) that counter stays zero — tests assert
// it.
//
// Barrier protocol, in order, with every shard quiesced at exactly H:
//   1. Cross-shard posts drain into destination heaps, sorted by
//      (arrival time, source shard, per-source sequence). Heap FIFO
//      tie-breaking then makes same-instant arrivals fire in that order —
//      deterministic and thread-count-invariant.
//   2. Observer journals (audit hooks, stats mutations deferred from shard
//      context) apply in (emission time, shard, per-shard sequence) order.
//   3. Barrier hooks run in registration order (e.g. fault-plan anchor
//      arming, trace-sink drains).
//   4. Periodic tasks whose due time equals H run in registration order —
//      this is how samplers and auditors observe a globally consistent
//      instant without an actor loop of their own.
//
// Thread→shard assignment is static (worker w owns shards {k : k mod T == w};
// the caller's thread doubles as worker 0), so a shard's state is only ever
// touched by one thread per window, and window hand-offs synchronize through
// a mutex + condition variable — a clean happens-before edge for TSan.

#ifndef SRC_SIM_SHARD_ENGINE_H_
#define SRC_SIM_SHARD_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/sim/inline_function.h"
#include "src/sim/simulator.h"

namespace tiger {

class ShardEngineProfiler;

class ShardEngine {
 public:
  struct Options {
    int shards = 1;
    int threads = 1;
    // Minimum cross-shard delivery delay the caller guarantees (the
    // network's base latency). Drives the window size.
    Duration lookahead = Duration::Micros(300);
  };

  // Smallest window the epoch fallback will run with.
  static constexpr Duration kMinWindow = Duration::Micros(25);

  explicit ShardEngine(Options options);
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  int shards() const { return static_cast<int>(sims_.size()); }
  int threads() const { return threads_; }
  Duration window() const { return window_; }

  Simulator& shard(int i) { return *sims_[static_cast<size_t>(i)]; }
  const Simulator& shard(int i) const { return *sims_[static_cast<size_t>(i)]; }

  // All shards agree on the clock at barriers; between RunUntil calls this is
  // the last barrier instant.
  TimePoint Now() const { return now_; }

  // Sum of events dispatched across all shards (read at barriers).
  uint64_t processed_events() const;

  // Shard index of the window executing on the calling thread, or -1 in
  // driver/barrier context. Relays use this to decide between journaling and
  // direct call-through.
  static int CurrentShard();

  // Schedules `cb` on `dst_shard`'s loop at absolute time `when`. From shard
  // context the post is buffered and merged at the next barrier; from driver
  // context (everything quiesced) it schedules directly. Arrivals at or
  // before the current barrier horizon are clamped to it (epoch fallback).
  void Post(int dst_shard, TimePoint when, InlineFunction cb);

  // Defers `apply` to the next barrier, globally ordered by (when, emitting
  // shard, per-shard emission sequence). From driver context `apply` runs
  // immediately — everything is already quiesced and ordered.
  void JournalAppend(TimePoint when, InlineFunction apply);

  // Runs `task` with all shards quiesced at every barrier whose time is
  // start + k*period (period must be a multiple of the window so dues land
  // on barriers). Registration order is execution order.
  void AddPeriodicTask(Duration period, InlineFunction task);

  // Runs at every barrier, after journals and before periodic tasks.
  void AddBarrierHook(InlineFunction hook);

  // Advances every shard to exactly `t`, window by window.
  void RunUntil(TimePoint t);
  void RunFor(Duration d) { RunUntil(now_ + d); }

  // Cross-shard posts whose arrival had to be clamped to a barrier because
  // the lookahead contract was violated. Zero in normal operation.
  uint64_t clamped_posts() const { return clamped_posts_; }

  // Installs per-shard cost attribution (src/trace/profiler.h). The profiler
  // must outlive the engine (or be detached with nullptr) and must be sized
  // for exactly shards() shards. Install before running: per-window deltas
  // start from the profiler's zeroed scratch. Profiling never changes the
  // logical schedule — it only reads the cycle counter and bumps counters.
  void SetProfiler(ShardEngineProfiler* profiler);

 private:
  struct PendingPost {
    TimePoint when;
    uint64_t seq = 0;  // Per-source-shard emission counter.
    uint32_t src = 0;
    int dst = 0;
    InlineFunction cb;
  };

  struct JournalEntry {
    TimePoint when;
    uint64_t seq = 0;  // Per-shard emission counter.
    uint32_t shard = 0;
    InlineFunction apply;
  };

  // Everything one shard writes during a window, padded so two shards never
  // share a cache line.
  struct alignas(64) ShardLane {
    std::vector<PendingPost> posts;
    std::vector<JournalEntry> journal;
    uint64_t post_seq = 0;
    uint64_t journal_seq = 0;
  };

  struct PeriodicTask {
    Duration period;
    TimePoint next_due;
    InlineFunction task;
  };

  static Duration WindowFor(Duration lookahead);

  // Runs all shards owned by `worker` through the current window.
  void RunOwnedShards(int worker, TimePoint horizon);
  void WorkerLoop(int worker);

  // Barrier phases (driver thread, shards quiesced). Both return how many
  // entries they moved, for the profiler's volume counters.
  size_t DrainPosts(TimePoint horizon);
  size_t ApplyJournals();

  // Per-window driver-side accounting once the barrier is fully processed.
  void RecordWindowProfile(uint64_t t_start, uint64_t t_busy, uint64_t t_wait,
                           uint64_t t_merge, uint64_t t_journal, uint64_t t_end,
                           size_t posts_merged, size_t journal_entries,
                           uint64_t periodic_fires, uint64_t hook_runs);

  Options options_;
  Duration window_;
  int threads_ = 1;
  TimePoint now_;
  uint64_t clamped_posts_ = 0;
  ShardEngineProfiler* profiler_ = nullptr;

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<ShardLane> lanes_;
  std::vector<PeriodicTask> tasks_;
  std::vector<InlineFunction> hooks_;

  // Scratch for barrier merges (retained across windows: no steady-state
  // allocation).
  std::vector<PendingPost> merge_posts_;
  std::vector<JournalEntry*> merge_journal_;

  // Window hand-off state, guarded by mu_.
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  TimePoint horizon_;
  int workers_running_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tiger

#endif  // SRC_SIM_SHARD_ENGINE_H_
