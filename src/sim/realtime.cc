#include "src/sim/realtime.h"

namespace tiger {

void RealtimeExecutor::Run(TimePoint until) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point wall_start = Clock::now();
  const TimePoint sim_start = sim_.Now();

  auto wall_deadline_for = [&](TimePoint sim_time) {
    const double sim_elapsed_us = static_cast<double>((sim_time - sim_start).micros());
    return wall_start + std::chrono::microseconds(
                            static_cast<int64_t>(sim_elapsed_us / speedup_));
  };

  auto sim_now_from_wall = [&]() {
    const auto wall_elapsed = Clock::now() - wall_start;
    const double wall_us =
        std::chrono::duration_cast<std::chrono::microseconds>(wall_elapsed).count() *
        speedup_;
    TimePoint mapped = sim_start + Duration::Micros(static_cast<int64_t>(wall_us));
    return std::min(std::max(mapped, sim_.Now()), until);
  };

  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_.load() && sim_.Now() < until) {
    // Drain injected work at the wall-mapped simulated instant, so external
    // events (socket arrivals) are timestamped against real time rather than
    // whenever this node last had local work.
    if (!injected_.empty()) {
      sim_.RunUntil(sim_now_from_wall());
    }
    while (!injected_.empty()) {
      auto fn = std::move(injected_.front());
      injected_.pop_front();
      fn();
    }
    std::optional<TimePoint> next = sim_.PeekNextEventTime();
    TimePoint target = next.has_value() ? std::min(*next, until) : until;
    const auto deadline = wall_deadline_for(target);
    if (Clock::now() < deadline) {
      wake_.wait_until(lock, deadline,
                       [this] { return stop_.load() || !injected_.empty(); });
      if (stop_.load() || !injected_.empty()) {
        continue;  // Handle the interruption before advancing time.
      }
    }
    sim_.RunUntil(target);
  }
  // Final injected drain so shutdown messages are not lost.
  while (!injected_.empty()) {
    auto fn = std::move(injected_.front());
    injected_.pop_front();
    fn();
  }
}

void RealtimeExecutor::Inject(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    injected_.push_back(std::move(fn));
  }
  wake_.notify_all();
}

void RealtimeExecutor::RequestStop() {
  stop_.store(true);
  wake_.notify_all();
}

}  // namespace tiger
