// Small-buffer-optimized callable for the event hot path.
//
// std::function heap-allocates once its capture exceeds the implementation's
// tiny inline buffer (16 bytes on libstdc++), and every Tiger event callback
// captures an actor pointer plus a few ids — enough to spill. InlineFunction
// stores callables up to kInlineBytes in place, so scheduling an event
// allocates nothing; larger (or potentially-throwing-move) callables fall
// back to a heap box, preserving std::function generality.
//
// Move-only by design: the simulator invokes each callback exactly once and
// never copies it, and move-only storage lets callbacks own move-only state
// (pooled payloads, unique_ptrs).

#ifndef SRC_SIM_INLINE_FUNCTION_H_
#define SRC_SIM_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tiger {

class InlineFunction {
 public:
  // Sized to hold the Network delivery closure (envelope + trace metadata,
  // 56 bytes) inline; anything bigger is rare and boxes.
  static constexpr size_t kInlineBytes = 64;

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT: mirrors std::function

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& f) {  // NOLINT: implicit, mirrors std::function
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kBoxedOps<D>;
    }
  }

  InlineFunction(InlineFunction&& o) noexcept { MoveFrom(o); }
  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      Reset();
      MoveFrom(o);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) noexcept { return !f; }
  friend bool operator!=(const InlineFunction& f, std::nullptr_t) noexcept {
    return static_cast<bool>(f);
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  // True when the held callable lives in the inline buffer (test hook).
  bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs the callable into `to` and destroys it in `from`.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static D* Held(void* s) noexcept {
    return std::launder(reinterpret_cast<D*>(s));
  }
  template <typename D>
  static D*& HeldPtr(void* s) noexcept {
    return *std::launder(reinterpret_cast<D**>(s));
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*Held<D>(s))(); },
      [](void* from, void* to) noexcept {
        ::new (to) D(std::move(*Held<D>(from)));
        Held<D>(from)->~D();
      },
      [](void* s) noexcept { Held<D>(s)->~D(); },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr Ops kBoxedOps{
      [](void* s) { (*HeldPtr<D>(s))(); },
      [](void* from, void* to) noexcept { ::new (to) D*(HeldPtr<D>(from)); },
      [](void* s) noexcept { delete HeldPtr<D>(s); },
      /*inline_storage=*/false,
  };

  void MoveFrom(InlineFunction& o) noexcept {
    if (o.ops_ != nullptr) {
      ops_ = o.ops_;
      ops_->relocate(o.storage_, storage_);
      o.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace tiger

#endif  // SRC_SIM_INLINE_FUNCTION_H_
