// Base class for simulation actors.
//
// An actor owns no threads; it is a state machine advanced by simulator
// callbacks. Halting an actor suppresses every callback it has scheduled —
// exactly the behaviour of a powered-off cub, which is how the
// failure-injection tests kill machines: no goodbye messages, no cleanup.
//
// Lifetime rule: actors must outlive any run of their simulator. In practice
// every actor is owned by the same object that owns the Simulator and nothing
// runs the simulator during teardown.

#ifndef SRC_SIM_ACTOR_H_
#define SRC_SIM_ACTOR_H_

#include <string>
#include <utility>

#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace tiger {

class Actor {
 public:
  Actor(Simulator* sim, std::string name) : sim_(sim), name_(std::move(name)) {
    TIGER_CHECK(sim != nullptr);
  }
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  const std::string& name() const { return name_; }
  Simulator& sim() const { return *sim_; }
  TimePoint Now() const { return sim_->Now(); }

  // A halted actor ignores all pending and future callbacks. Models power loss.
  virtual void Halt() { halted_ = true; }
  bool halted() const { return halted_; }

  // Brings a halted actor back to life. Bumping the epoch invalidates every
  // callback scheduled before the restart: a revived machine must not be
  // driven by timers armed in its previous incarnation.
  virtual void Restart() {
    ++epoch_;
    halted_ = false;
  }

 protected:
  // Schedules a member callback that is automatically suppressed if the actor
  // halts before it fires.
  template <typename Fn>
  TimerId After(Duration d, Fn&& fn) {
    return At(Now() + d, std::forward<Fn>(fn));
  }

  template <typename Fn>
  TimerId At(TimePoint t, Fn&& fn) {
    if (halted_) {
      return kInvalidTimer;
    }
    return sim_->ScheduleAt(t, [this, e = epoch_, fn = std::forward<Fn>(fn)]() mutable {
      if (!halted_ && e == epoch_) {
        fn();
      }
    });
  }

  void CancelTimer(TimerId id) { sim_->Cancel(id); }

 private:
  Simulator* sim_;
  std::string name_;
  bool halted_ = false;
  // Incremented on Restart(); callbacks scheduled in an older epoch never fire.
  uint64_t epoch_ = 0;
};

}  // namespace tiger

#endif  // SRC_SIM_ACTOR_H_
