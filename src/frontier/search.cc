#include "src/frontier/search.h"

#include <cmath>
#include <string>

#include "src/frontier/pool.h"
#include "src/frontier/runner.h"
#include "src/frontier/servability.h"
#include "src/layout/shape.h"

namespace tiger {
namespace frontier {

namespace {

const char kCubLossSpread[] = "cub_loss_spread";
const char kCubLossAdjacent[] = "cub_loss_adjacent";
const char kDiskDegradation[] = "disk_degradation";
const char kPartitionRace[] = "partition_race";
const char kCrashRestartStorm[] = "crash_restart_storm";
const char kControllerFailover[] = "controller_failover";

// Milliseconds of partition window per unit of partition_race cardinality.
// Measured: the frontier sits near 2.5 s (well below the 7 s deadman — a
// sub-deadman partition is never *detected*, so records a racing insert lost
// inside it are never re-forwarded), so 1 s steps bracket it at k = 3.
constexpr int64_t kPartitionStepMs = 1000;

// Budgets scale with exposure: the full-length runs stream ~2x as long as
// the quick CI configuration, so bounded detection-window losses roughly
// double while the servable/unservable separation stays put.
int64_t BudgetScale(const FrontierOptions& options) { return options.quick ? 1 : 2; }

ScenarioDescriptor Base(const FrontierOptions& options) {
  ScenarioDescriptor d;
  d.seed = options.seed;
  d.cubs = options.cubs;
  d.disks_per_cub = options.disks_per_cub;
  d.decluster = options.decluster;
  d.files = options.cubs;  // Round-robin start disks: file i starts on cub i.
  // Files long enough that the t=0 viewers are still streaming near the end
  // of the run: open-ended losses from an unservable fault set then keep
  // accruing and separate cleanly from the bounded detection-window losses a
  // servable set costs.
  d.file_s = options.quick ? 60 : 90;
  d.viewers = 4;
  d.run_ms = options.quick ? 70000 : 105000;
  d.forward_copies = options.weaken_no_reforward ? 1 : 2;
  d.reforward_on_failure = !options.weaken_no_reforward;
  return d;
}

// k cub positions as far apart as the ring allows (the survivable placement).
std::vector<int> SpreadPositions(int n, int k, int rotate) {
  std::vector<int> positions;
  for (int i = 0; i < k; ++i) {
    const int pos = static_cast<int>(
        std::lround(static_cast<double>(i) * static_cast<double>(n) / static_cast<double>(k)));
    positions.push_back((pos + rotate) % n);
  }
  return positions;
}

ScenarioDescriptor CubLossScenario(const FrontierOptions& options, const std::vector<int>& cubs,
                                   const char* family, int variant) {
  ScenarioDescriptor d = Base(options);
  d.family = family;
  d.seed = options.seed + static_cast<uint64_t>(variant);
  // Measured (quick, seed 1): a servable loss set costs <= 8 lost blocks
  // (detection windows only); one unservable disk costs ~30 and keeps
  // climbing with exposure. 20 sits between with margin on both sides.
  d.loss_budget = 20 * BudgetScale(options);
  int64_t at = 15000;
  for (int cub : cubs) {
    ScenarioAction fail;
    fail.kind = ScenarioAction::Kind::kFailCub;
    fail.target = cub;
    fail.at_ms = at;
    at += 2000;
    d.actions.push_back(fail);
  }
  return d;
}

ScenarioDescriptor PartitionScenario(const FrontierOptions& options, int64_t window_ms) {
  ScenarioDescriptor d = Base(options);
  d.family = kPartitionRace;
  d.loss_budget = 40 * BudgetScale(options);
  // Viewer 0 stops at 20 s: its DescheduleMsg is the first deschedule on the
  // wire and arms the partition window.
  ScenarioAction stop;
  stop.kind = ScenarioAction::Kind::kStopViewer;
  stop.target = 0;
  stop.at_ms = 20000;
  d.actions.push_back(stop);
  // Sever cub 1 the instant that deschedule appears, for window_ms — racing
  // deschedule propagation (and, past the deadman, failure detection itself)
  // against the heal, with live streams crossing the cut.
  ScenarioAction cut;
  cut.kind = ScenarioAction::Kind::kPartition;
  cut.group = {1};
  cut.anchor = "deschedule";
  cut.at_ms = 0;
  cut.end_ms = window_ms;
  d.actions.push_back(cut);
  // Insert racing the deschedule: a new start lands while the deschedule is
  // still propagating and the partition is up.
  d.late_viewer_file = 4;
  d.late_viewer_at_ms = 21000;
  return d;
}

std::vector<ScenarioDescriptor> BuildFamilyScenarios(const std::string& family, int k,
                                                     const FrontierOptions& options) {
  std::vector<ScenarioDescriptor> out;
  const int n = options.cubs;
  if (k < 1) {
    return out;
  }
  if (family == kCubLossSpread) {
    if (k >= n) {
      return out;
    }
    for (int variant = 0; variant < 2; ++variant) {
      ScenarioDescriptor d = CubLossScenario(options, SpreadPositions(n, k, variant),
                                             kCubLossSpread, variant);
      out.push_back(std::move(d));
    }
  } else if (family == kCubLossAdjacent) {
    if (k >= n) {
      return out;
    }
    // Two runs of k neighboring cubs, starting at different ring positions.
    const int starts[2] = {2, (2 + n / 2) % n};
    for (int variant = 0; variant < 2; ++variant) {
      std::vector<int> cubs;
      for (int i = 0; i < k; ++i) {
        cubs.push_back((starts[variant] + i) % n);
      }
      out.push_back(CubLossScenario(options, cubs, kCubLossAdjacent, variant));
    }
  } else if (family == kDiskDegradation) {
    ScenarioDescriptor d = Base(options);
    d.family = kDiskDegradation;
    d.loss_budget = (30 + 10 * k) * BudgetScale(options);
    const int total_disks = options.cubs * options.disks_per_cub;
    for (int i = 0; i < k; ++i) {
      ScenarioAction a;
      a.target = (1 + 2 * i) % total_disks;
      a.at_ms = 15000 + 3000 * i;
      if (i % 2 == 0) {
        a.kind = ScenarioAction::Kind::kDiskBurst;
        a.end_ms = a.at_ms + 3000;
        a.prob_ppm = 600000;
      } else {
        a.kind = ScenarioAction::Kind::kDiskLimp;
        a.end_ms = a.at_ms + 4000;
        a.delay_ms = 2;  // Limp factor numerator: reads take 2/1 as long.
        a.aux = 1;
      }
      d.actions.push_back(a);
    }
    out.push_back(std::move(d));
  } else if (family == kPartitionRace) {
    out.push_back(PartitionScenario(options, kPartitionStepMs * k));
  } else if (family == kCrashRestartStorm) {
    if (k >= n) {
      return out;
    }
    ScenarioDescriptor d = Base(options);
    d.family = kCrashRestartStorm;
    // Measured (quick, seed 1): one crash+rejoin cycle costs ~7 lost blocks;
    // the k = 2 overlap (cub and fragment holder down together) costs ~50.
    d.loss_budget = 25 * BudgetScale(options);
    // Consecutive cubs with overlapping 14 s outages: at k >= 2 a cub and its
    // fragment holder are down simultaneously for ~11 s, so the storm crosses
    // from bounded detection losses into a sustained unservable window.
    for (int i = 0; i < k; ++i) {
      const int cub = (2 + i) % n;
      ScenarioAction fail;
      fail.kind = ScenarioAction::Kind::kFailCub;
      fail.target = cub;
      fail.at_ms = 15000 + 3000 * i;
      d.actions.push_back(fail);
      ScenarioAction revive;
      revive.kind = ScenarioAction::Kind::kReviveCub;
      revive.target = cub;
      revive.at_ms = fail.at_ms + 14000;
      d.actions.push_back(revive);
    }
    // Probe service on the first crashed-and-rejoined cub's own file.
    d.late_viewer_file = 2;
    d.late_viewer_at_ms = 45000;
    out.push_back(std::move(d));
  } else if (family == kControllerFailover) {
    if (k - 1 >= n) {
      return out;
    }
    ScenarioDescriptor d = Base(options);
    d.family = kControllerFailover;
    d.backup_controller = !options.weaken_no_backup;
    d.loss_budget = (40 + 20 * (k - 1)) * BudgetScale(options);
    ScenarioAction cut;
    cut.kind = ScenarioAction::Kind::kFailController;
    cut.at_ms = 15000;
    d.actions.push_back(cut);
    int64_t at = 18000;
    for (int cub : SpreadPositions(n, k - 1, 0)) {
      ScenarioAction fail;
      fail.kind = ScenarioAction::Kind::kFailCub;
      fail.target = cub;
      fail.at_ms = at;
      at += 2000;
      d.actions.push_back(fail);
    }
    // New starts must still work once the standby has taken over.
    d.late_viewer_file = 5;
    d.late_viewer_at_ms = 30000;
    out.push_back(std::move(d));
  }
  return out;
}

bool FamilyCountsCubFaults(const std::string& family) {
  return family == kCubLossSpread || family == kCubLossAdjacent || family == kCrashRestartStorm;
}

EnvelopeCounterexample MakeCounterexample(int cardinality, const ScenarioDescriptor& descriptor,
                                          const ScenarioOutcome& outcome) {
  EnvelopeCounterexample ce;
  ce.cardinality = cardinality;
  ce.verdict = VerdictName(outcome.verdict);
  ce.lost_blocks = outcome.lost_blocks;
  ce.survivable = outcome.survivable;
  ce.descriptor = descriptor.ToText();
  return ce;
}

}  // namespace

const std::vector<std::string>& AllFamilies() {
  static const std::vector<std::string> kFamilies = {
      kCubLossSpread,   kCubLossAdjacent,    kDiskDegradation,
      kPartitionRace,   kCrashRestartStorm,  kControllerFailover,
  };
  return kFamilies;
}

std::vector<ScenarioDescriptor> FamilyScenarios(const std::string& family, int cardinality,
                                                const FrontierOptions& options) {
  return BuildFamilyScenarios(family, cardinality, options);
}

FrontierEnvelope RunTournament(const FrontierOptions& options) {
  FrontierEnvelope envelope;
  envelope.seed = options.seed;
  envelope.cubs = options.cubs;
  envelope.disks_per_cub = options.disks_per_cub;
  envelope.decluster = options.decluster;
  envelope.quick = options.quick;

  const SystemShape shape{options.cubs, options.disks_per_cub, options.decluster};
  const int gls_lower = ExactFaultLowerBound(shape);
  const int gls_upper = ExactFaultUpperBound(shape);

  auto report = [&](const std::string& line) {
    if (options.progress) {
      options.progress(line);
    }
  };

  const std::vector<std::string>& families =
      options.families.empty() ? AllFamilies() : options.families;
  // Speculatively queue every level of every family for the worker pool, in
  // the order the serial loop below will consume them. Levels the search
  // never reaches (family failed earlier, budget ran out) are just wasted
  // background work; the serial loop's accounting is untouched.
  ScenarioPool pool(options.jobs);
  for (const std::string& family : families) {
    for (int k = 1; k <= options.max_cardinality; ++k) {
      pool.Prefetch(BuildFamilyScenarios(family, k, options));
    }
  }
  for (const std::string& family : families) {
    EnvelopeFamily result;
    result.name = family;
    if (FamilyCountsCubFaults(family)) {
      result.gls_lower = gls_lower;
      result.gls_upper = gls_upper;
    }

    bool failed = false;
    for (int k = 1; k <= options.max_cardinality && !failed; ++k) {
      const std::vector<ScenarioDescriptor> variants = BuildFamilyScenarios(family, k, options);
      if (variants.empty()) {
        break;  // Cardinality exceeds what the shape admits.
      }
      if (envelope.runs + static_cast<int64_t>(variants.size()) > options.max_runs) {
        report(family + ": run budget exhausted at cardinality " + std::to_string(k));
        break;
      }
      result.tested_cardinality = k;
      bool all_survived = true;
      for (const ScenarioDescriptor& descriptor : variants) {
        const ScenarioOutcome outcome = pool.Get(descriptor);
        ++envelope.runs;
        ++result.verdict_counts[static_cast<size_t>(outcome.verdict)];
        report(family + " k=" + std::to_string(k) + " seed=" + std::to_string(descriptor.seed) +
               " -> " + VerdictName(outcome.verdict) + " (lost " +
               std::to_string(outcome.lost_blocks) + "/" + std::to_string(descriptor.loss_budget) +
               (outcome.survivable ? ")" : ", UNSURVIVABLE)"));
        if (!outcome.survivable) {
          all_survived = false;
          result.counterexamples.push_back(MakeCounterexample(k, descriptor, outcome));
        }
      }
      if (all_survived) {
        result.max_survivable = k;
      } else {
        failed = true;
      }
    }
    result.saturated = !failed;

    // Bisection: shrink the partition window between the last surviving and
    // the first failing cardinality to the minimal failing milliseconds.
    if (failed && family == kPartitionRace && options.bisection_steps > 0) {
      int64_t lo = kPartitionStepMs * (result.tested_cardinality - 1);  // Survived.
      int64_t hi = kPartitionStepMs * result.tested_cardinality;       // Failed.
      ScenarioDescriptor minimal;
      ScenarioOutcome minimal_outcome;
      bool have_minimal = false;
      for (int step = 0; step < options.bisection_steps; ++step) {
        if (envelope.runs >= options.max_runs) {
          break;
        }
        const int64_t mid = (lo + hi) / 2;
        if (mid <= lo) {
          break;
        }
        // Bisection midpoints depend on prior verdicts, so they are never
        // prefetched; Get falls back to inline execution.
        const ScenarioDescriptor descriptor = PartitionScenario(options, mid);
        const ScenarioOutcome outcome = pool.Get(descriptor);
        ++envelope.runs;
        ++result.verdict_counts[static_cast<size_t>(outcome.verdict)];
        report(family + " bisect window=" + std::to_string(mid) + "ms -> " +
               VerdictName(outcome.verdict) + (outcome.survivable ? "" : " (UNSURVIVABLE)"));
        if (!outcome.survivable) {
          hi = mid;
          minimal = descriptor;
          minimal_outcome = outcome;
          have_minimal = true;
        } else {
          lo = mid;
        }
      }
      if (have_minimal) {
        result.counterexamples.push_back(
            MakeCounterexample(result.tested_cardinality, minimal, minimal_outcome));
      }
      report(family + ": minimal failing window " + std::to_string(hi) + "ms");
    }

    envelope.families.push_back(std::move(result));
  }
  return envelope;
}

}  // namespace frontier
}  // namespace tiger
