#include "src/frontier/pool.h"

#include <utility>

namespace tiger {
namespace frontier {

ScenarioPool::ScenarioPool(int jobs) {
  for (int i = 1; i < jobs; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ScenarioPool::~ScenarioPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ScenarioPool::Prefetch(const std::vector<ScenarioDescriptor>& descriptors) {
  if (workers_.empty()) {
    return;
  }
  bool queued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ScenarioDescriptor& descriptor : descriptors) {
      const std::string key = descriptor.ToText();
      auto [it, inserted] = entries_.try_emplace(key);
      if (!inserted) {
        continue;
      }
      it->second = std::make_unique<Entry>();
      it->second->descriptor = descriptor;
      queue_.push_back(it->second.get());
      queued = true;
    }
  }
  if (queued) {
    work_cv_.notify_all();
  }
}

ScenarioOutcome ScenarioPool::Get(const ScenarioDescriptor& descriptor) {
  Entry* entry = nullptr;
  if (!workers_.empty()) {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(descriptor.ToText());
    if (it != entries_.end()) {
      entry = it->second.get();
      if (entry->state == Entry::State::kQueued) {
        // Claim it: drop it from the queue and run inline below.
        for (auto queue_it = queue_.begin(); queue_it != queue_.end(); ++queue_it) {
          if (*queue_it == entry) {
            queue_.erase(queue_it);
            break;
          }
        }
        entry->state = Entry::State::kRunning;
      } else if (entry->state == Entry::State::kRunning) {
        done_cv_.wait(lock, [entry] { return entry->state == Entry::State::kDone; });
      }
      if (entry->state == Entry::State::kDone) {
        return entry->outcome;
      }
    }
  }
  // Inline: never prefetched, or claimed from the queue above.
  ScenarioOutcome outcome = RunScenario(descriptor);
  if (entry != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    entry->outcome = outcome;
    entry->state = Entry::State::kDone;
  }
  return outcome;
}

void ScenarioPool::WorkerLoop() {
  while (true) {
    Entry* entry = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) {
        return;
      }
      entry = queue_.front();
      queue_.pop_front();
      entry->state = Entry::State::kRunning;
    }
    ScenarioOutcome outcome = RunScenario(entry->descriptor);
    {
      std::lock_guard<std::mutex> lock(mu_);
      entry->outcome = std::move(outcome);
      entry->state = Entry::State::kDone;
    }
    done_cv_.notify_all();
  }
}

}  // namespace frontier
}  // namespace tiger
