#include "src/frontier/envelope.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>

namespace tiger {
namespace frontier {

namespace {

// --- canonical JSON emission -------------------------------------------------

std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- minimal JSON reader (the subset EnvelopeJson emits) ---------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject } type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  int64_t Int(const std::string& key, int64_t fallback = 0) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->type == Type::kNumber ? static_cast<int64_t>(v->number) : fallback;
  }
  bool Bool(const std::string& key, bool fallback = false) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->type == Type::kBool ? v->boolean : fallback;
  }
  std::string Str(const std::string& key) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->type == Type::kString ? v->str : std::string();
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) { return ParseValue(out) && (SkipSpace(), pos_ == text_.size()); }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool Literal(const char* s) {
    const size_t n = std::strlen(s);
    if (text_.compare(pos_, n, s) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  // Unlike bench_compare's reader this one decodes escapes: the embedded
  // scenario descriptors are multi-line strings.
  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') {
      return false;
    }
    pos_++;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          const long code = std::strtol(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          out->push_back(static_cast<char>(code));  // Emitter only writes < 0x20.
          break;
        }
        default:
          out->push_back(esc);  // \" \\ \/
      }
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    pos_++;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      pos_++;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      pos_++;
    }
    if (pos_ == start) {
      return false;
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    pos_++;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      pos_++;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) {
        return false;
      }
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    pos_++;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || !ParseString(&key)) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      pos_++;
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

int EnvelopeFamily::MinCounterexampleCardinality() const {
  int best = 0;
  for (const EnvelopeCounterexample& ce : counterexamples) {
    if (best == 0 || ce.cardinality < best) {
      best = ce.cardinality;
    }
  }
  return best;
}

const EnvelopeFamily* FrontierEnvelope::Find(const std::string& name) const {
  for (const EnvelopeFamily& family : families) {
    if (family.name == name) {
      return &family;
    }
  }
  return nullptr;
}

std::string EnvelopeJson(const FrontierEnvelope& envelope) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"tiger-frontier-v1\",\n";
  out += "  \"seed\": " + std::to_string(envelope.seed) + ",\n";
  out += "  \"shape\": {\"cubs\": " + std::to_string(envelope.cubs) +
         ", \"disks_per_cub\": " + std::to_string(envelope.disks_per_cub) +
         ", \"decluster\": " + std::to_string(envelope.decluster) + "},\n";
  out += std::string("  \"quick\": ") + (envelope.quick ? "true" : "false") + ",\n";
  out += "  \"runs\": " + std::to_string(envelope.runs) + ",\n";
  out += "  \"families\": [";
  for (size_t f = 0; f < envelope.families.size(); ++f) {
    const EnvelopeFamily& family = envelope.families[f];
    out += f == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"name\": \"" + Escape(family.name) + "\",\n";
    out += "      \"tested_cardinality\": " + std::to_string(family.tested_cardinality) + ",\n";
    out += "      \"max_survivable\": " + std::to_string(family.max_survivable) + ",\n";
    out += std::string("      \"saturated\": ") + (family.saturated ? "true" : "false") + ",\n";
    out += "      \"gls_lower\": " + std::to_string(family.gls_lower) + ",\n";
    out += "      \"gls_upper\": " + std::to_string(family.gls_upper) + ",\n";
    out += "      \"verdicts\": {";
    for (size_t v = 0; v < static_cast<size_t>(Verdict::kVerdictCount); ++v) {
      if (v != 0) {
        out += ", ";
      }
      out += "\"" + std::string(VerdictName(static_cast<Verdict>(v))) +
             "\": " + std::to_string(family.verdict_counts[v]);
    }
    out += "},\n";
    out += "      \"counterexamples\": [";
    for (size_t c = 0; c < family.counterexamples.size(); ++c) {
      const EnvelopeCounterexample& ce = family.counterexamples[c];
      out += c == 0 ? "\n" : ",\n";
      out += "        {\n";
      out += "          \"cardinality\": " + std::to_string(ce.cardinality) + ",\n";
      out += "          \"verdict\": \"" + Escape(ce.verdict) + "\",\n";
      out += "          \"lost_blocks\": " + std::to_string(ce.lost_blocks) + ",\n";
      out += std::string("          \"survivable\": ") + (ce.survivable ? "true" : "false") +
             ",\n";
      out += "          \"descriptor\": \"" + Escape(ce.descriptor) + "\"\n";
      out += "        }";
    }
    out += family.counterexamples.empty() ? "]\n" : "\n      ]\n";
    out += "    }";
  }
  out += envelope.families.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

Result<FrontierEnvelope> ParseEnvelopeJson(const std::string& json) {
  JsonValue root;
  if (!JsonParser(json).Parse(&root) || root.type != JsonValue::Type::kObject) {
    return Status::Error("frontier envelope: not valid JSON");
  }
  if (root.Str("schema") != "tiger-frontier-v1") {
    return Status::Error("frontier envelope: missing or unsupported schema");
  }
  FrontierEnvelope envelope;
  envelope.seed = static_cast<uint64_t>(root.Int("seed"));
  const JsonValue* shape = root.Find("shape");
  if (shape == nullptr || shape->type != JsonValue::Type::kObject) {
    return Status::Error("frontier envelope: missing shape");
  }
  envelope.cubs = static_cast<int>(shape->Int("cubs"));
  envelope.disks_per_cub = static_cast<int>(shape->Int("disks_per_cub"));
  envelope.decluster = static_cast<int>(shape->Int("decluster"));
  envelope.quick = root.Bool("quick");
  envelope.runs = root.Int("runs");
  const JsonValue* families = root.Find("families");
  if (families == nullptr || families->type != JsonValue::Type::kArray) {
    return Status::Error("frontier envelope: missing families array");
  }
  for (const JsonValue& entry : families->array) {
    if (entry.type != JsonValue::Type::kObject) {
      return Status::Error("frontier envelope: family is not an object");
    }
    EnvelopeFamily family;
    family.name = entry.Str("name");
    if (family.name.empty()) {
      return Status::Error("frontier envelope: family missing name");
    }
    family.tested_cardinality = static_cast<int>(entry.Int("tested_cardinality"));
    family.max_survivable = static_cast<int>(entry.Int("max_survivable"));
    family.saturated = entry.Bool("saturated");
    family.gls_lower = static_cast<int>(entry.Int("gls_lower"));
    family.gls_upper = static_cast<int>(entry.Int("gls_upper"));
    if (const JsonValue* verdicts = entry.Find("verdicts");
        verdicts != nullptr && verdicts->type == JsonValue::Type::kObject) {
      for (size_t v = 0; v < static_cast<size_t>(Verdict::kVerdictCount); ++v) {
        family.verdict_counts[v] = verdicts->Int(VerdictName(static_cast<Verdict>(v)));
      }
    }
    if (const JsonValue* ces = entry.Find("counterexamples");
        ces != nullptr && ces->type == JsonValue::Type::kArray) {
      for (const JsonValue& ce_value : ces->array) {
        EnvelopeCounterexample ce;
        ce.cardinality = static_cast<int>(ce_value.Int("cardinality"));
        ce.verdict = ce_value.Str("verdict");
        ce.lost_blocks = ce_value.Int("lost_blocks");
        ce.survivable = ce_value.Bool("survivable");
        ce.descriptor = ce_value.Str("descriptor");
        family.counterexamples.push_back(std::move(ce));
      }
    }
    envelope.families.push_back(std::move(family));
  }
  return envelope;
}

std::string EnvelopeReport(const FrontierEnvelope& envelope) {
  std::string out;
  out += "frontier envelope: seed " + std::to_string(envelope.seed) + ", shape " +
         std::to_string(envelope.cubs) + "x" + std::to_string(envelope.disks_per_cub) +
         " decluster " + std::to_string(envelope.decluster) + ", " +
         std::to_string(envelope.runs) + " runs\n";
  for (const EnvelopeFamily& family : envelope.families) {
    out += "\n" + family.name + ":\n";
    out += "  max survivable cardinality " + std::to_string(family.max_survivable) +
           " (tested up to " + std::to_string(family.tested_cardinality) +
           (family.saturated ? ", saturated — no failure found inside the budget)" : ")") + "\n";
    if (family.gls_upper > 0) {
      out += "  GLS bounds for this shape: every " + std::to_string(family.gls_lower) +
             "-fault set survivable, some " + std::to_string(family.gls_upper) +
             "-fault set survivable\n";
    }
    out += "  verdicts:";
    for (size_t v = 0; v < static_cast<size_t>(Verdict::kVerdictCount); ++v) {
      if (family.verdict_counts[v] > 0) {
        out += " " + std::string(VerdictName(static_cast<Verdict>(v))) + "=" +
               std::to_string(family.verdict_counts[v]);
      }
    }
    out += "\n";
    for (const EnvelopeCounterexample& ce : family.counterexamples) {
      out += "  counterexample at cardinality " + std::to_string(ce.cardinality) + ": " +
             ce.verdict + ", " + std::to_string(ce.lost_blocks) + " lost blocks\n";
    }
  }
  return out;
}

std::vector<std::string> CompareEnvelopes(const FrontierEnvelope& baseline,
                                          const FrontierEnvelope& current) {
  std::vector<std::string> regressions;
  for (const EnvelopeFamily& base : baseline.families) {
    const EnvelopeFamily* cur = current.Find(base.name);
    if (cur == nullptr) {
      regressions.push_back(base.name + ": family missing from current envelope");
      continue;
    }
    if (cur->max_survivable < base.max_survivable) {
      regressions.push_back(base.name + ": max survivable cardinality shrank " +
                            std::to_string(base.max_survivable) + " -> " +
                            std::to_string(cur->max_survivable));
    }
    const int base_min = base.MinCounterexampleCardinality();
    const int cur_min = cur->MinCounterexampleCardinality();
    if (cur_min != 0 && base_min != 0 && cur_min < base_min) {
      regressions.push_back(base.name + ": minimal counterexample shrank " +
                            std::to_string(base_min) + " -> " + std::to_string(cur_min));
    }
    if (cur_min != 0 && base.saturated && cur_min <= base.tested_cardinality) {
      regressions.push_back(base.name + ": failure at cardinality " + std::to_string(cur_min) +
                            " where baseline had proven survivability");
    }
  }
  return regressions;
}

}  // namespace frontier
}  // namespace tiger
