#include "src/frontier/runner.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/audit/auditor.h"
#include "src/client/testbed.h"
#include "src/common/check.h"
#include "src/core/messages.h"
#include "src/core/system.h"
#include "src/net/fault_plan.h"
#include "src/sim/actor.h"

namespace tiger {
namespace frontier {

namespace {

const char* const kVerdictNames[] = {
    "clean_survive", "degraded",            "qos_glitches",
    "divergence",    "invariant_violation", "livelock",
};
static_assert(sizeof(kVerdictNames) / sizeof(kVerdictNames[0]) ==
                  static_cast<size_t>(Verdict::kVerdictCount),
              "verdict name table out of sync");

// Maps a descriptor anchor name onto the wire tag NetFaultPlan keys its
// anchors by (Payload::fault_kind() == static_cast<int>(MsgKind)).
bool AnchorTagFromName(const std::string& name, int* out) {
  if (name.empty()) {
    *out = kNoAnchor;
    return true;
  }
  struct Entry {
    const char* name;
    MsgKind kind;
  };
  static const Entry kEntries[] = {
      {"vstate", MsgKind::kViewerStateBatch}, {"deschedule", MsgKind::kDeschedule},
      {"start_play", MsgKind::kStartPlay},    {"heartbeat", MsgKind::kHeartbeat},
      {"failure_notice", MsgKind::kFailureNotice},
      {"client_request", MsgKind::kClientRequest},
  };
  for (const Entry& e : kEntries) {
    if (name == e.name) {
      *out = static_cast<int>(e.kind);
      return true;
    }
  }
  return false;
}

// Run-level stall detector. Ticks once a second and tracks, per viewer, a
// progress signature over every observable counter. A viewer that is active
// (mid-play) whose signature has not moved for a whole deadman window is
// stalled, not slow: the deadman fires once per stall episode, bumping the
// frontier.livelock_timeouts counter and dropping a LIVELOCK_DEADMAN instant
// on the frontier trace track (a = how many viewers are stalled right now).
class DeadmanWatchdog : public Actor {
 public:
  DeadmanWatchdog(Simulator* sim, Testbed* bed, Duration window, MetricsRegistry* metrics,
                  Tracer* tracer, TraceTrackId track, TigerSystem* incident_target)
      : Actor(sim, "frontier-deadman"),
        bed_(bed),
        window_(window),
        metrics_(metrics),
        tracer_(tracer),
        track_(track),
        incident_target_(incident_target) {}

  void Begin() { After(kTick, [this] { Tick(); }); }

  int64_t fires() const { return fires_; }

 private:
  static constexpr Duration kTick = Duration::Seconds(1);

  struct Watch {
    int64_t signature = -1;
    TimePoint last_change;
    bool tripped = false;
  };

  static int64_t Signature(const ViewerClient::Stats& s) {
    return s.plays_requested + s.plays_started + s.plays_completed + s.blocks_complete +
           s.fragments_received + s.late_blocks + s.lost_blocks;
  }

  void Tick() {
    const TimePoint now = Now();
    const auto& viewers = bed_->viewers();
    if (watches_.size() < viewers.size()) {
      watches_.resize(viewers.size());
    }
    int64_t stalled = 0;
    int64_t newly_tripped = 0;
    for (size_t i = 0; i < viewers.size(); ++i) {
      const ViewerClient& viewer = *viewers[i];
      Watch& watch = watches_[i];
      const int64_t signature = Signature(viewer.stats());
      if (signature != watch.signature) {
        watch.signature = signature;
        watch.last_change = now;
        watch.tripped = false;
        continue;
      }
      if (viewer.playing() && now - watch.last_change >= window_) {
        ++stalled;
        if (!watch.tripped) {
          watch.tripped = true;
          ++newly_tripped;
        }
      }
    }
    if (newly_tripped > 0) {
      fires_ += newly_tripped;
      if (metrics_ != nullptr) {
        metrics_->Counter("frontier.livelock_timeouts") += newly_tripped;
      }
      if (tracer_ != nullptr) {
        TraceArgs args;
        args.a = stalled;
        tracer_->Instant(track_, TraceEventType::kLivelockDeadman, args);
      }
      if (incident_target_ != nullptr) {
        // Capture the window *around the stall*, not whatever the run looks
        // like at exit. No-op unless the recorder/monitor are armed.
        incident_target_->TriggerIncident("livelock_deadman");
      }
    }
    After(kTick, [this] { Tick(); });
  }

  Testbed* bed_;
  Duration window_;
  MetricsRegistry* metrics_;
  Tracer* tracer_;
  TraceTrackId track_;
  TigerSystem* incident_target_;
  std::vector<Watch> watches_;
  int64_t fires_ = 0;
};

// Translates one descriptor action into the system's fault primitives.
// Returns the number of guaranteed-to-fire point faults it scheduled (rule
// windows count their actual hits through FaultStats instead).
int ApplyAction(const ScenarioAction& action, TigerSystem* system, Testbed* bed) {
  const TimePoint t0 = TimePoint::Zero();
  const TimePoint at = t0 + Duration::Millis(action.at_ms);
  const TimePoint end = t0 + Duration::Millis(action.end_ms);
  const double probability =
      static_cast<double>(action.prob_ppm) / 1e6;
  int anchor_tag = kNoAnchor;
  TIGER_CHECK(AnchorTagFromName(action.anchor, &anchor_tag))
      << "unknown anchor '" << action.anchor << "'";
  switch (action.kind) {
    case ScenarioAction::Kind::kFailCub:
      system->FailCubAt(at, CubId(static_cast<uint32_t>(action.target)));
      return 1;
    case ScenarioAction::Kind::kReviveCub:
      system->ReviveCubAt(at, CubId(static_cast<uint32_t>(action.target)));
      return 0;
    case ScenarioAction::Kind::kFailDisk:
      system->FailDiskAt(at, DiskId(static_cast<uint32_t>(action.target)));
      return 1;
    case ScenarioAction::Kind::kDiskBurst:
      system->InjectDiskErrorBurst(DiskId(static_cast<uint32_t>(action.target)), at, end,
                                   probability);
      return 0;
    case ScenarioAction::Kind::kDiskLimp:
      system->InjectDiskLimp(DiskId(static_cast<uint32_t>(action.target)), at, end,
                             action.delay_ms, std::max<int64_t>(action.aux, 1));
      return 0;
    case ScenarioAction::Kind::kPartition: {
      // The named cubs are severed from every other cub and the controller;
      // the data plane (paced block sends) is not the control plane and keeps
      // flowing, exactly as a switch fabric partition would behave here.
      std::vector<FaultNetAddress> inside;
      std::vector<FaultNetAddress> outside;
      const AddressBook& addresses = system->addresses();
      for (int c = 0; c < system->cub_count(); ++c) {
        const bool isolated =
            std::find(action.group.begin(), action.group.end(), c) != action.group.end();
        (isolated ? inside : outside).push_back(addresses.CubAddress(CubId(static_cast<uint32_t>(c))));
      }
      outside.push_back(addresses.controller);
      NetFaultPlan* plan = system->net_fault_plan();
      TIGER_CHECK(plan != nullptr) << "EnableNetFaultPlan must run before actions";
      if (anchor_tag == kNoAnchor) {
        plan->AddPartition(inside, outside, at, end);
      } else {
        plan->AddPartitionAnchored(inside, outside, anchor_tag, Duration::Millis(action.at_ms),
                                   Duration::Millis(action.end_ms));
      }
      return 0;
    }
    case ScenarioAction::Kind::kFailController:
      system->FailControllerAt(at);
      return 1;
    case ScenarioAction::Kind::kDelayFromCub:
    case ScenarioAction::Kind::kDuplicateFromCub: {
      NetFaultPlan* plan = system->net_fault_plan();
      TIGER_CHECK(plan != nullptr) << "EnableNetFaultPlan must run before actions";
      for (int c = 0; c < system->cub_count(); ++c) {
        if (action.target >= 0 && action.target != c) {
          continue;
        }
        NetFaultPlan::Rule rule;
        rule.kind = action.kind == ScenarioAction::Kind::kDelayFromCub
                        ? NetFaultPlan::RuleKind::kDelay
                        : NetFaultPlan::RuleKind::kDuplicate;
        rule.src = system->cub(CubId(static_cast<uint32_t>(c))).address();
        if (anchor_tag == kNoAnchor) {
          rule.start = at;
          rule.end = end;
        } else {
          rule.anchor_kind = anchor_tag;
          rule.rel_start = Duration::Millis(action.at_ms);
          rule.rel_end = Duration::Millis(action.end_ms);
        }
        rule.probability = probability;
        rule.delay = Duration::Millis(action.delay_ms);
        rule.copies = static_cast<int>(std::max<int64_t>(action.aux, 1));
        plan->AddRule(rule);
      }
      return 0;
    }
    case ScenarioAction::Kind::kStopViewer:
      // Workload, not a fault: an explicit viewer stop puts a DescheduleMsg
      // on the wire for anchored rules (and late inserts) to race against.
      system->sim().ScheduleAt(at, [bed, target = action.target] {
        if (target >= 0 && target < static_cast<int>(bed->viewers().size())) {
          bed->viewers()[static_cast<size_t>(target)]->RequestStop();
        }
      });
      return 0;
    case ScenarioAction::Kind::kKindCount:
      break;
  }
  TIGER_CHECK(false) << "unreachable action kind";
  return 0;
}

}  // namespace

const char* VerdictName(Verdict verdict) {
  const size_t i = static_cast<size_t>(verdict);
  if (i >= static_cast<size_t>(Verdict::kVerdictCount)) {
    return "?";
  }
  return kVerdictNames[i];
}

Verdict ParseVerdict(const std::string& name) {
  for (size_t i = 0; i < static_cast<size_t>(Verdict::kVerdictCount); ++i) {
    if (name == kVerdictNames[i]) {
      return static_cast<Verdict>(i);
    }
  }
  return Verdict::kVerdictCount;
}

ScenarioOutcome RunScenario(const ScenarioDescriptor& descriptor) {
  return RunScenario(descriptor, RunOptions());
}

ScenarioOutcome RunScenario(const ScenarioDescriptor& descriptor, const RunOptions& options) {
  TigerConfig config;
  config.shape = SystemShape{descriptor.cubs, descriptor.disks_per_cub, descriptor.decluster};
  config.forward_copies = descriptor.forward_copies;
  config.reforward_on_failure = descriptor.reforward_on_failure;

  Testbed bed(config, descriptor.seed);
  TigerSystem& system = bed.system();
  system.EnableOracle();
  system.EnableInvariantChecker();
  system.EnableNetFaultPlan();
  // A small ring is plenty: the verdict comes from the oracles, the trace is
  // a debugging aid for replayed counterexamples.
  system.EnableTracing(4096);
  if (descriptor.backup_controller) {
    system.EnableBackupController();
  }
  const TraceTrackId frontier_track = system.tracer()->RegisterTrack("frontier");

  ScheduleAuditor auditor(&system.sim(), &system.config());
  auditor.Attach(&system);

  const bool capture_incidents = !options.incident_dir.empty();
  if (capture_incidents) {
    system.EnableFlightRecorder();
    system.EnableSloMonitor();
    system.SetIncidentDir(options.incident_dir);
    // The byte-exact descriptor rides in the bundle so
    // `replay_scenario --file=<bundle>/scenario.txt` reproduces the run.
    system.SetIncidentScenarioText(descriptor.ToText());
  }

  int point_faults = 0;
  for (const ScenarioAction& action : descriptor.actions) {
    point_faults += ApplyAction(action, &system, &bed);
  }

  bed.AddContent(descriptor.files, Duration::Seconds(descriptor.file_s));
  bed.Start();
  auditor.Start();
  for (int v = 0; v < descriptor.viewers; ++v) {
    bed.AddViewer(FileId(static_cast<uint32_t>(v % descriptor.files)));
  }
  if (descriptor.late_viewer_file >= 0 && descriptor.late_viewer_at_ms >= 0) {
    system.sim().ScheduleAt(TimePoint::Zero() + Duration::Millis(descriptor.late_viewer_at_ms),
                            [&bed, &descriptor] {
                              bed.AddViewer(FileId(static_cast<uint32_t>(
                                  descriptor.late_viewer_file % descriptor.files)));
                            });
  }

  DeadmanWatchdog watchdog(&system.sim(), &bed, options.deadman_window, system.metrics(),
                           system.tracer(), frontier_track,
                           capture_incidents ? &system : nullptr);
  watchdog.Begin();

  bed.RunFor(Duration::Millis(descriptor.run_ms));

  // --- collect ---
  ScenarioOutcome outcome;
  const ViewerClient::Stats stats = bed.TotalClientStats();
  outcome.plays_requested = stats.plays_requested;
  outcome.plays_started = stats.plays_started;
  outcome.plays_completed = stats.plays_completed;
  outcome.blocks_complete = stats.blocks_complete;
  outcome.late_blocks = stats.late_blocks;
  outcome.lost_blocks = stats.lost_blocks;

  const InvariantChecker* checker = system.invariant_checker();
  outcome.invariant_violations = static_cast<int64_t>(checker->violations().size());
  const ScheduleOracle* oracle = system.oracle();
  outcome.oracle_conflicts =
      oracle->conflict_count() + static_cast<int64_t>(oracle->violations().size());
  outcome.audit_divergences = auditor.total_divergences();
  outcome.truly_lost_records =
      auditor.CountFor(ScheduleAuditor::DivergenceClass::kTrulyLostRecord);
  outcome.audit_divergences_fatal = outcome.audit_divergences - outcome.truly_lost_records;

  const QosLedger::Rollup rollup = system.qos_ledger().FleetRollup();
  outcome.unattributed_glitches =
      std::max<int64_t>(0, (stats.late_blocks + stats.lost_blocks) - (rollup.late + rollup.lost));

  const Cub::Counters counters = system.TotalCubCounters();
  outcome.takeovers = counters.takeovers;
  outcome.mirror_recoveries = counters.mirror_recoveries;
  outcome.rejoins = counters.rejoins;
  const FaultStats& faults = system.fault_stats();
  outcome.faults_fired = point_faults + faults.Count(FaultStats::Kind::kMessageDropped) +
                         faults.Count(FaultStats::Kind::kMessageDelayed) +
                         faults.Count(FaultStats::Kind::kMessageDuplicated) +
                         faults.Count(FaultStats::Kind::kTransientDiskError) +
                         faults.Count(FaultStats::Kind::kLimpedRead);
  outcome.livelock_timeouts = watchdog.fires();

  // --- classify (most severe applicable verdict wins) ---
  if (outcome.livelock_timeouts > 0) {
    outcome.verdict = Verdict::kLivelock;
    outcome.detail = "deadman fired: viewer made no progress for a full window";
  } else if (outcome.invariant_violations > 0 || outcome.oracle_conflicts > 0) {
    outcome.verdict = Verdict::kInvariantViolation;
    if (!checker->violations().empty()) {
      outcome.detail = checker->violations().front().what;
    } else if (!oracle->violations().empty()) {
      outcome.detail = oracle->violations().front();
    } else {
      outcome.detail = "schedule slot conflict";
    }
  } else if (outcome.audit_divergences_fatal > 0) {
    outcome.verdict = Verdict::kDivergence;
    for (size_t c = 0; c < static_cast<size_t>(ScheduleAuditor::DivergenceClass::kClassCount);
         ++c) {
      const auto cls = static_cast<ScheduleAuditor::DivergenceClass>(c);
      if (cls != ScheduleAuditor::DivergenceClass::kTrulyLostRecord &&
          auditor.CountFor(cls) > 0) {
        outcome.detail = ScheduleAuditor::ClassName(cls);
        break;
      }
    }
  } else if (outcome.late_blocks + outcome.lost_blocks > 0) {
    outcome.verdict = Verdict::kQosGlitches;
  } else if (outcome.takeovers + outcome.mirror_recoveries + outcome.rejoins +
                 outcome.faults_fired >
             0) {
    outcome.verdict = Verdict::kDegraded;
  } else {
    outcome.verdict = Verdict::kCleanSurvive;
  }
  outcome.survivable = outcome.verdict <= Verdict::kQosGlitches &&
                       outcome.lost_blocks <= descriptor.loss_budget;

  if (!options.trace_path.empty()) {
    system.WriteChromeTrace(options.trace_path);
  }
  if (!options.audit_report_path.empty()) {
    auditor.WriteReportJson(options.audit_report_path);
  }
  if (capture_incidents) {
    // Breaches the online monitor can't see mid-run (e.g. a glitch burst too
    // slow for the burn windows) still deserve a bundle when the lattice says
    // the run went bad.
    if (outcome.verdict >= Verdict::kQosGlitches && system.incident_dirs().empty()) {
      system.TriggerIncident(std::string("verdict_") + VerdictName(outcome.verdict));
    }
    const std::string summary = OutcomeSummary(outcome);
    for (const std::string& dir : system.incident_dirs()) {
      const std::string path = dir + "/outcome.txt";
      std::FILE* f = std::fopen(path.c_str(), "wb");
      if (f != nullptr) {
        std::fwrite(summary.data(), 1, summary.size(), f);
        std::fclose(f);
      }
    }
  }
  return outcome;
}

std::string OutcomeSummary(const ScenarioOutcome& outcome) {
  std::string out;
  out += "verdict " + std::string(VerdictName(outcome.verdict)) + "\n";
  out += "survivable " + std::to_string(outcome.survivable ? 1 : 0) + "\n";
  out += "plays " + std::to_string(outcome.plays_requested) + " " +
         std::to_string(outcome.plays_started) + " " + std::to_string(outcome.plays_completed) +
         "\n";
  out += "blocks_complete " + std::to_string(outcome.blocks_complete) + "\n";
  out += "late_blocks " + std::to_string(outcome.late_blocks) + "\n";
  out += "lost_blocks " + std::to_string(outcome.lost_blocks) + "\n";
  out += "invariant_violations " + std::to_string(outcome.invariant_violations) + "\n";
  out += "oracle_conflicts " + std::to_string(outcome.oracle_conflicts) + "\n";
  out += "audit_divergences " + std::to_string(outcome.audit_divergences) + "\n";
  out += "audit_divergences_fatal " + std::to_string(outcome.audit_divergences_fatal) + "\n";
  out += "truly_lost_records " + std::to_string(outcome.truly_lost_records) + "\n";
  out += "takeovers " + std::to_string(outcome.takeovers) + "\n";
  out += "mirror_recoveries " + std::to_string(outcome.mirror_recoveries) + "\n";
  out += "rejoins " + std::to_string(outcome.rejoins) + "\n";
  out += "faults_fired " + std::to_string(outcome.faults_fired) + "\n";
  out += "livelock_timeouts " + std::to_string(outcome.livelock_timeouts) + "\n";
  if (!outcome.detail.empty()) {
    out += "detail " + outcome.detail + "\n";
  }
  return out;
}

}  // namespace frontier
}  // namespace tiger
