// Budgeted frontier search over structured failure scenarios.
//
// The tournament walks six scenario families, each parameterized by an
// integer fault cardinality k:
//
//   cub_loss_spread      k permanent cub losses placed maximally far apart on
//                        the decluster ring — the placements §2.3's mirroring
//                        is designed to survive.
//   cub_loss_adjacent    k permanent losses of *neighboring* cubs — the
//                        placements it provably cannot survive past k = 1,
//                        because a cub and its fragment holder die together.
//   disk_degradation     k transient disk faults (alternating error bursts
//                        and limping disks) with the cubs healthy; mirror
//                        fallback should absorb any k.
//   partition_race       one cub severed from the control plane for a window
//                        of 3k seconds anchored to the first deschedule on
//                        the wire — probing the race between the deadman
//                        timeout and partition heal. On failure the search
//                        bisects the window length to the minimal failing
//                        milliseconds.
//   crash_restart_storm  k staggered crash+rejoin cycles across the ring,
//                        with a late viewer probing post-rejoin service.
//   controller_failover  controller power-cut (plus k-1 spread cub losses)
//                        with the warm standby enabled; a late viewer probes
//                        that new starts still work after takeover.
//
// Search is breadth-first on k: the family's frontier is the largest k at
// which every variant tried survived; the first failing k yields minimal
// counterexamples (full descriptors, replayable via tools/replay_scenario).
// Everything is seeded and budgeted — a fixed FrontierOptions produces a
// byte-identical envelope.
//
// For the cub-loss families the envelope also records the exact GLS-style
// bounds of the shape (servability.h): measured_max(adjacent) should meet the
// every-set bound, measured_max(spread) the some-set bound.

#ifndef SRC_FRONTIER_SEARCH_H_
#define SRC_FRONTIER_SEARCH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/frontier/envelope.h"
#include "src/frontier/scenario.h"

namespace tiger {
namespace frontier {

struct FrontierOptions {
  uint64_t seed = 1;
  // Tournament shape. Small on purpose: the frontier positions depend on the
  // ring geometry, not the cub count, and 8 cubs keeps a full tournament
  // inside a CI smoke budget.
  int cubs = 8;
  int disks_per_cub = 1;
  int decluster = 2;
  // Breadth-first cardinality ceiling per family.
  int max_cardinality = 3;
  // Global budget on scenario executions across the whole tournament.
  int max_runs = 80;
  // Window-refinement steps after the first partition_race failure.
  int bisection_steps = 3;
  // Shorter files and runs (the CI smoke configuration).
  bool quick = true;
  // Empty = all families; otherwise exact names to run.
  std::vector<std::string> families;
  // Protocol weakening knobs, used to prove the CI gate bites: drop the
  // §4.1.1 double-forwarding (and failure re-forwarding), or run without the
  // warm-standby controller.
  bool weaken_no_reforward = false;
  bool weaken_no_backup = false;
  // Worker threads prefetching scenario outcomes (src/frontier/pool.h).
  // Pure wall-clock: RunScenario is deterministic per descriptor and the
  // search consumes outcomes serially, so the envelope is byte-identical for
  // every jobs value (and `jobs` is deliberately not recorded in it).
  int jobs = 1;
  // Optional per-run progress sink (stderr in the tools).
  std::function<void(const std::string&)> progress;
};

// All family names, in tournament order.
const std::vector<std::string>& AllFamilies();

// The scenario variants one family runs at one cardinality (deterministic;
// exposed so tests can replay exactly what the tournament ran).
std::vector<ScenarioDescriptor> FamilyScenarios(const std::string& family, int cardinality,
                                                const FrontierOptions& options);

FrontierEnvelope RunTournament(const FrontierOptions& options);

}  // namespace frontier
}  // namespace tiger

#endif  // SRC_FRONTIER_SEARCH_H_
