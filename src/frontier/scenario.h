// ScenarioDescriptor: one failure scenario, serializable and replayable.
//
// A scenario composes the repo's existing fault primitives — cub crash and
// revive, permanent disk failure, transient disk error bursts and limping,
// control-plane partitions/delay/duplication (NetFaultPlan), controller
// power-cut — with a fixed workload (system shape, content, viewers, run
// length) and one seed. The frontier tournament (src/frontier/search.h)
// enumerates these; tools/replay_scenario re-runs any one of them standalone.
//
// The text form is line-based and canonical: ToText() always emits fields in
// one fixed order with fixed formatting, and Parse(ToText(d)) == d exactly.
// Probabilities travel as parts-per-million integers so the round trip is
// lossless byte-for-byte — the byte-reproducibility of frontier.json leans
// on this. Timing windows may be phase-anchored ("5 ms after the first
// deschedule message"), mapping onto NetFaultPlan's anchored rules.

#ifndef SRC_FRONTIER_SCENARIO_H_
#define SRC_FRONTIER_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace tiger {
namespace frontier {

struct ScenarioAction {
  enum class Kind : uint8_t {
    kFailCub = 0,       // target=cub, at_ms (permanent unless revived later).
    kReviveCub,         // target=cub, at_ms.
    kFailDisk,          // target=global disk, at_ms (permanent).
    kDiskBurst,         // target=disk, [at_ms, end_ms), prob_ppm of read errors.
    kDiskLimp,          // target=disk, [at_ms, end_ms), throughput * den/num.
    kPartition,         // group cubs severed from everything else for the window.
    kFailController,    // at_ms.
    kDelayFromCub,      // target=src cub (-1 = every cub), window, prob, delay_ms.
    kDuplicateFromCub,  // target=src cub (-1 = every cub), window, prob, aux copies.
    kStopViewer,        // target=viewer index (creation order), at_ms. Sends the
                        // stop request whose DescheduleMsg anchored rules race.
    kKindCount,         // sentinel
  };

  Kind kind = Kind::kFailCub;
  int target = -1;          // Cub or disk id; -1 = all cubs (delay/duplicate).
  std::vector<int> group;   // kPartition: cub ids isolated from the rest.
  int64_t at_ms = 0;        // Event time, or window start.
  int64_t end_ms = 0;       // Window end (exclusive); unused for point events.
  int64_t prob_ppm = 1000000;  // Probability in parts-per-million.
  int64_t delay_ms = 0;     // kDelayFromCub: delay; kDiskLimp: numerator.
  int64_t aux = 0;          // kDiskLimp: denominator; kDuplicateFromCub: copies.
  // Phase anchor for window actions: "" = absolute sim time; otherwise one of
  // "start_play", "deschedule", "vstate", "client_request", "failure_notice"
  // — the window becomes [first-sighting + at_ms, first-sighting + end_ms).
  std::string anchor;

  bool operator==(const ScenarioAction&) const = default;
};

const char* ActionKindName(ScenarioAction::Kind kind);

struct ScenarioDescriptor {
  // Free-form family label; the tournament uses it to group results.
  std::string family = "adhoc";
  uint64_t seed = 1;
  // System shape (cubs, disks per cub, decluster factor).
  int cubs = 8;
  int disks_per_cub = 1;
  int decluster = 2;
  // Workload: `files` pieces of content of `file_s` seconds; `viewers`
  // one-shot viewers on files 0..viewers-1 started at t=0.
  int files = 8;
  int64_t file_s = 60;
  int viewers = 4;
  int64_t run_ms = 110000;
  // Client-observed lost blocks beyond this budget mean the scenario is not
  // survivable even when no invariant broke: the losses are open-ended, not
  // the bounded detection-window kind.
  int64_t loss_budget = 60;
  bool backup_controller = false;
  // Protocol weakening knobs (default = paper configuration). The tournament
  // uses these to prove the CI envelope gate bites.
  int forward_copies = 2;
  bool reforward_on_failure = true;
  // Post-fault service probe: one extra viewer on `late_viewer_file` started
  // at `late_viewer_at_ms` (-1 = no probe).
  int late_viewer_file = -1;
  int64_t late_viewer_at_ms = -1;
  std::vector<ScenarioAction> actions;

  bool operator==(const ScenarioDescriptor&) const = default;

  // Canonical text form (see file comment). Ends with "end\n".
  std::string ToText() const;
  static Result<ScenarioDescriptor> Parse(const std::string& text);
};

}  // namespace frontier
}  // namespace tiger

#endif  // SRC_FRONTIER_SCENARIO_H_
