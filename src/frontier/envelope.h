// The survivability envelope: what the frontier tournament measured, as a
// machine-readable artifact (frontier.json) that CI diffs against a committed
// baseline.
//
// Per scenario family the envelope records the maximum fault cardinality at
// which every tried variant survived, whether the search saturated (never
// found a failure inside its budget), the exact GLS-style bounds the shape
// admits (src/frontier/servability.h), a verdict histogram over every trial,
// and the minimal counterexamples found — each carrying its full scenario
// descriptor text so `tools/replay_scenario` can re-run it byte-for-byte.
//
// EnvelopeJson() is canonical: fixed key order, fixed formatting, integers
// only — two identical tournaments emit byte-identical files. CompareEnvelopes
// is the CI gate: it reports a regression when a family disappears, its
// survivable frontier shrinks, or a counterexample appears at a cardinality
// the baseline had proven survivable.

#ifndef SRC_FRONTIER_ENVELOPE_H_
#define SRC_FRONTIER_ENVELOPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/frontier/runner.h"

namespace tiger {
namespace frontier {

struct EnvelopeCounterexample {
  int cardinality = 0;
  std::string verdict;  // VerdictName() of the failing run.
  int64_t lost_blocks = 0;
  bool survivable = false;
  // Canonical ScenarioDescriptor::ToText() — feed to tools/replay_scenario.
  std::string descriptor;
};

struct EnvelopeFamily {
  std::string name;
  int tested_cardinality = 0;  // Highest cardinality actually run.
  int max_survivable = 0;      // Highest cardinality where every variant survived.
  bool saturated = false;      // True: no failure found up to tested_cardinality.
  // Exact bounds for the shape (0/0 where cardinality is not a cub-fault
  // count, e.g. disk-degradation families).
  int gls_lower = 0;
  int gls_upper = 0;
  int64_t verdict_counts[static_cast<size_t>(Verdict::kVerdictCount)] = {};
  std::vector<EnvelopeCounterexample> counterexamples;

  int64_t trials() const {
    int64_t total = 0;
    for (int64_t c : verdict_counts) {
      total += c;
    }
    return total;
  }
  // Smallest counterexample cardinality, or 0 when saturated.
  int MinCounterexampleCardinality() const;
};

struct FrontierEnvelope {
  uint64_t seed = 0;
  int cubs = 0;
  int disks_per_cub = 0;
  int decluster = 0;
  bool quick = false;
  int64_t runs = 0;  // Total scenario executions across all families.
  std::vector<EnvelopeFamily> families;

  const EnvelopeFamily* Find(const std::string& name) const;
};

// Canonical, byte-reproducible JSON (schema "tiger-frontier-v1").
std::string EnvelopeJson(const FrontierEnvelope& envelope);
Result<FrontierEnvelope> ParseEnvelopeJson(const std::string& json);

// Human-readable report: one block per family plus the GLS comparison.
std::string EnvelopeReport(const FrontierEnvelope& envelope);

// CI gate. Empty result = no regression. Each string names the family and
// what shrank; purely additive changes (new families, larger frontiers) are
// not regressions.
std::vector<std::string> CompareEnvelopes(const FrontierEnvelope& baseline,
                                          const FrontierEnvelope& current);

}  // namespace frontier
}  // namespace tiger

#endif  // SRC_FRONTIER_ENVELOPE_H_
