// Deterministic scenario execution and the verdict lattice.
//
// RunScenario builds one TigerSystem from a ScenarioDescriptor, attaches
// every oracle the repo has — the InvariantChecker (§4 coherence), the
// ScheduleOracle (slot conflicts), the ScheduleAuditor's shadow global
// schedule (10 divergence classes), and the QoS ledger (client-observed
// glitches with causes) — plus a run-level *deadman watchdog*, injects the
// descriptor's faults, and classifies the outcome into the verdict lattice:
//
//   kCleanSurvive        nothing fired, nothing degraded, no glitches
//   kDegraded            faults fired / mirror chains ran, but clients saw
//                        zero late or lost blocks
//   kQosGlitches         clients saw glitches; every one is attributed and
//                        no coherence property broke
//   kDivergence          the auditor flagged a class other than truly-lost
//                        (truly-lost records are the paper's bounded crash
//                        losses, not incoherence)
//   kInvariantViolation  the InvariantChecker or oracle flagged §4 breakage
//   kLivelock            the deadman watchdog fired: some viewer made no
//                        observable progress for a whole window while active
//                        — stalled, not slow (distinguishable in Perfetto by
//                        the LIVELOCK_DEADMAN instant and the
//                        frontier.livelock_timeouts counter)
//
// Verdicts are ordered by severity; `survivable` additionally requires the
// client-lost total to stay inside the descriptor's loss budget, separating
// bounded detection-window losses from open-ended service loss.

#ifndef SRC_FRONTIER_RUNNER_H_
#define SRC_FRONTIER_RUNNER_H_

#include <cstdint>
#include <string>

#include "src/common/time.h"
#include "src/frontier/scenario.h"

namespace tiger {
namespace frontier {

enum class Verdict : uint8_t {
  kCleanSurvive = 0,
  kDegraded,
  kQosGlitches,
  kDivergence,
  kInvariantViolation,
  kLivelock,
  kVerdictCount,  // sentinel
};

const char* VerdictName(Verdict verdict);
// Returns kVerdictCount for an unknown name.
Verdict ParseVerdict(const std::string& name);

struct ScenarioOutcome {
  Verdict verdict = Verdict::kCleanSurvive;
  bool survivable = true;

  // Client side.
  int64_t plays_requested = 0;
  int64_t plays_started = 0;
  int64_t plays_completed = 0;
  int64_t blocks_complete = 0;
  int64_t late_blocks = 0;
  int64_t lost_blocks = 0;

  // Oracles.
  int64_t invariant_violations = 0;
  int64_t oracle_conflicts = 0;
  int64_t audit_divergences = 0;        // All classes.
  int64_t audit_divergences_fatal = 0;  // Classes other than truly-lost.
  int64_t truly_lost_records = 0;
  int64_t unattributed_glitches = 0;    // Ledger late+lost mismatch vs clients.

  // Degradation / recovery machinery.
  int64_t takeovers = 0;
  int64_t mirror_recoveries = 0;
  int64_t rejoins = 0;
  int64_t faults_fired = 0;  // Injected fault events that actually hit.

  // Deadman watchdog.
  int64_t livelock_timeouts = 0;

  // First fatal divergence class / invariant text; empty when healthy.
  std::string detail;
};

struct RunOptions {
  // A viewer with zero observable progress for this long (while active)
  // trips the deadman.
  Duration deadman_window = Duration::Seconds(20);
  // Non-empty: write the Chrome trace / auditor report there after the run.
  std::string trace_path;
  std::string audit_report_path;
  // Non-empty: arm the flight recorder + SLO monitor and write incident
  // bundles (tiger-incident-v1) under this directory. A bundle is dumped the
  // moment a breach probe or burn-rate alert fires mid-run; if none fired but
  // the final verdict is kQosGlitches or worse, one is dumped post-run. Each
  // bundle gets an outcome.txt with the final verdict so its embedded
  // scenario.txt can be replayed with a known expectation.
  std::string incident_dir;
};

ScenarioOutcome RunScenario(const ScenarioDescriptor& descriptor);
ScenarioOutcome RunScenario(const ScenarioDescriptor& descriptor, const RunOptions& options);

// One line per counter, deterministic, for the replay tool and reports.
std::string OutcomeSummary(const ScenarioOutcome& outcome);

}  // namespace frontier
}  // namespace tiger

#endif  // SRC_FRONTIER_RUNNER_H_
