// Data-servability predicate over failed-cub sets, and the exact
// Goemans–Lynch–Saias-style fault bounds it induces.
//
// §2.3's declustered mirroring places the mirror of disk p as `decluster`
// fragments on disks p+1 .. p+decluster. A block is servable iff its primary
// cub is alive, or every cub holding one of its mirror fragments is alive
// (failed-mode service needs all fragments). A *fault set* is servable iff
// every block in the system remains servable — which reduces to a pure ring
// predicate on the shape, independent of the content catalog, because every
// disk holds primaries (round-robin striping covers all disks).
//
// GLS (*Upper and Lower Bounds on the Number of Faults a System Can
// Withstand Without Repairs*, PAPERS.md) frames fault tolerance as two
// numbers: the largest f such that EVERY f-fault set is survivable (the
// guarantee, their lower-bound object) and the largest f such that SOME
// f-fault set is survivable (the ceiling, their upper-bound object). For the
// small shapes the tournament runs, both are computed exactly by exhaustive
// enumeration here; the measured frontier is diffed against them in
// frontier.json.

#ifndef SRC_FRONTIER_SERVABILITY_H_
#define SRC_FRONTIER_SERVABILITY_H_

#include <vector>

#include "src/common/check.h"
#include "src/layout/shape.h"

namespace tiger {
namespace frontier {

// True iff every block in the system remains servable (primary or complete
// mirror chain) with exactly the cubs in `failed` dead. `failed[c]` indexes
// cubs; disks die with their cub.
inline bool FaultSetServable(const SystemShape& shape, const std::vector<bool>& failed) {
  TIGER_CHECK(static_cast<int>(failed.size()) == shape.num_cubs);
  for (int c = 0; c < shape.num_cubs; ++c) {
    if (!failed[static_cast<size_t>(c)]) {
      continue;
    }
    // Every block whose primary lives on a disk of cub c must rebuild from
    // its fragments: fragments of disk p live on disks p+1 .. p+decluster.
    for (int local = 0; local < shape.disks_per_cub; ++local) {
      DiskId primary = shape.GlobalDiskIndex(CubId(static_cast<uint32_t>(c)), local);
      for (int j = 1; j <= shape.decluster_factor; ++j) {
        CubId holder = shape.CubOfDisk(shape.AdvanceDisk(primary, j));
        if (failed[holder.value()]) {
          return false;  // Primary dead and a fragment holder dead too.
        }
      }
    }
  }
  return true;
}

// Convenience overload for an explicit list of failed cubs.
inline bool FaultSetServable(const SystemShape& shape, const std::vector<int>& failed_cubs) {
  std::vector<bool> failed(static_cast<size_t>(shape.num_cubs), false);
  for (int c : failed_cubs) {
    TIGER_CHECK(c >= 0 && c < shape.num_cubs);
    failed[static_cast<size_t>(c)] = true;
  }
  return FaultSetServable(shape, failed);
}

// Largest f such that every set of f cub faults leaves all blocks servable
// (GLS guarantee). Exhaustive over 2^num_cubs subsets; shapes here are small.
inline int ExactFaultLowerBound(const SystemShape& shape) {
  const int n = shape.num_cubs;
  TIGER_CHECK(n <= 20) << "exhaustive bound only for small shapes";
  std::vector<int> min_unservable(static_cast<size_t>(n) + 1, -1);
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<bool> failed(static_cast<size_t>(n), false);
    int count = 0;
    for (int c = 0; c < n; ++c) {
      if ((mask >> c) & 1u) {
        failed[static_cast<size_t>(c)] = true;
        ++count;
      }
    }
    if (!FaultSetServable(shape, failed) && (min_unservable[static_cast<size_t>(count)] < 0)) {
      min_unservable[static_cast<size_t>(count)] = 1;
    }
  }
  for (int f = 1; f <= n; ++f) {
    if (min_unservable[static_cast<size_t>(f)] > 0) {
      return f - 1;
    }
  }
  return n;
}

// Largest f such that some set of f cub faults leaves all blocks servable
// (GLS ceiling). For single-disk cubs this is the max independent spread on
// the ring; computed exhaustively for exactness on any shape.
inline int ExactFaultUpperBound(const SystemShape& shape) {
  const int n = shape.num_cubs;
  TIGER_CHECK(n <= 20) << "exhaustive bound only for small shapes";
  int best = 0;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<bool> failed(static_cast<size_t>(n), false);
    int count = 0;
    for (int c = 0; c < n; ++c) {
      if ((mask >> c) & 1u) {
        failed[static_cast<size_t>(c)] = true;
        ++count;
      }
    }
    if (count > best && FaultSetServable(shape, failed)) {
      best = count;
    }
  }
  return best;
}

}  // namespace frontier
}  // namespace tiger

#endif  // SRC_FRONTIER_SERVABILITY_H_
