#include "src/frontier/scenario.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace tiger {
namespace frontier {

namespace {

const char* const kActionNames[] = {
    "fail_cub", "revive_cub", "fail_disk", "disk_burst", "disk_limp",
    "partition", "fail_controller", "delay_msgs", "dup_msgs", "stop_viewer",
};
static_assert(sizeof(kActionNames) / sizeof(kActionNames[0]) ==
                  static_cast<size_t>(ScenarioAction::Kind::kKindCount),
              "action name table out of sync");

bool ParseActionKind(const std::string& name, ScenarioAction::Kind* out) {
  for (size_t i = 0; i < static_cast<size_t>(ScenarioAction::Kind::kKindCount); ++i) {
    if (name == kActionNames[i]) {
      *out = static_cast<ScenarioAction::Kind>(i);
      return true;
    }
  }
  return false;
}

std::string GroupToString(const std::vector<int>& group) {
  if (group.empty()) {
    return "-";
  }
  std::string out;
  for (size_t i = 0; i < group.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += std::to_string(group[i]);
  }
  return out;
}

bool ParseGroup(const std::string& text, std::vector<int>* out) {
  out->clear();
  if (text == "-") {
    return true;
  }
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    std::string part = text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (part.empty()) {
      return false;
    }
    char* end = nullptr;
    long v = std::strtol(part.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return false;
    }
    out->push_back(static_cast<int>(v));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return true;
}

// One key=value token; returns false on malformed input.
bool SplitToken(const std::string& token, std::string* key, std::string* value) {
  size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

bool ParseI64(const std::string& text, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !text.empty();
}

}  // namespace

const char* ActionKindName(ScenarioAction::Kind kind) {
  const size_t i = static_cast<size_t>(kind);
  if (i >= static_cast<size_t>(ScenarioAction::Kind::kKindCount)) {
    return "?";
  }
  return kActionNames[i];
}

std::string ScenarioDescriptor::ToText() const {
  std::string out;
  out += "scenario v1\n";
  out += "family " + family + "\n";
  out += "seed " + std::to_string(seed) + "\n";
  out += "shape " + std::to_string(cubs) + " " + std::to_string(disks_per_cub) + " " +
         std::to_string(decluster) + "\n";
  out += "content " + std::to_string(files) + " " + std::to_string(file_s) + "\n";
  out += "viewers " + std::to_string(viewers) + "\n";
  out += "run_ms " + std::to_string(run_ms) + "\n";
  out += "loss_budget " + std::to_string(loss_budget) + "\n";
  out += "backup_controller " + std::to_string(backup_controller ? 1 : 0) + "\n";
  out += "forwarding " + std::to_string(forward_copies) + " " +
         std::to_string(reforward_on_failure ? 1 : 0) + "\n";
  out += "late_viewer " + std::to_string(late_viewer_file) + " " +
         std::to_string(late_viewer_at_ms) + "\n";
  for (const ScenarioAction& a : actions) {
    out += "action ";
    out += ActionKindName(a.kind);
    out += " target=" + std::to_string(a.target);
    out += " group=" + GroupToString(a.group);
    out += " at_ms=" + std::to_string(a.at_ms);
    out += " end_ms=" + std::to_string(a.end_ms);
    out += " prob_ppm=" + std::to_string(a.prob_ppm);
    out += " delay_ms=" + std::to_string(a.delay_ms);
    out += " aux=" + std::to_string(a.aux);
    out += " anchor=" + (a.anchor.empty() ? std::string("-") : a.anchor);
    out += "\n";
  }
  out += "end\n";
  return out;
}

Result<ScenarioDescriptor> ScenarioDescriptor::Parse(const std::string& text) {
  ScenarioDescriptor d;
  d.actions.clear();
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  bool saw_end = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Tolerate trailing carriage returns and skip blank/comment lines.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    auto fail = [&](const std::string& why) {
      return Status::Error("scenario parse error, line " + std::to_string(line_no) + ": " +
                           why + " (\"" + line + "\")");
    };
    if (!saw_header) {
      if (keyword != "scenario") {
        return fail("expected 'scenario v1' header");
      }
      std::string version;
      fields >> version;
      if (version != "v1") {
        return fail("unsupported scenario version");
      }
      saw_header = true;
      continue;
    }
    if (keyword == "family") {
      fields >> d.family;
    } else if (keyword == "seed") {
      fields >> d.seed;
    } else if (keyword == "shape") {
      fields >> d.cubs >> d.disks_per_cub >> d.decluster;
    } else if (keyword == "content") {
      fields >> d.files >> d.file_s;
    } else if (keyword == "viewers") {
      fields >> d.viewers;
    } else if (keyword == "run_ms") {
      fields >> d.run_ms;
    } else if (keyword == "loss_budget") {
      fields >> d.loss_budget;
    } else if (keyword == "backup_controller") {
      int v = 0;
      fields >> v;
      d.backup_controller = v != 0;
    } else if (keyword == "forwarding") {
      int reforward = 1;
      fields >> d.forward_copies >> reforward;
      d.reforward_on_failure = reforward != 0;
    } else if (keyword == "late_viewer") {
      fields >> d.late_viewer_file >> d.late_viewer_at_ms;
    } else if (keyword == "action") {
      std::string kind_name;
      fields >> kind_name;
      ScenarioAction a;
      if (!ParseActionKind(kind_name, &a.kind)) {
        return fail("unknown action kind '" + kind_name + "'");
      }
      std::string token;
      while (fields >> token) {
        std::string key, value;
        if (!SplitToken(token, &key, &value)) {
          return fail("malformed token '" + token + "'");
        }
        int64_t i64 = 0;
        if (key == "group") {
          if (!ParseGroup(value, &a.group)) {
            return fail("malformed group '" + value + "'");
          }
        } else if (key == "anchor") {
          a.anchor = value == "-" ? "" : value;
        } else if (!ParseI64(value, &i64)) {
          return fail("non-integer value '" + token + "'");
        } else if (key == "target") {
          a.target = static_cast<int>(i64);
        } else if (key == "at_ms") {
          a.at_ms = i64;
        } else if (key == "end_ms") {
          a.end_ms = i64;
        } else if (key == "prob_ppm") {
          a.prob_ppm = i64;
        } else if (key == "delay_ms") {
          a.delay_ms = i64;
        } else if (key == "aux") {
          a.aux = i64;
        } else {
          return fail("unknown action key '" + key + "'");
        }
      }
      d.actions.push_back(std::move(a));
      continue;  // The token loop reads to end-of-line; failbit is expected.
    } else if (keyword == "end") {
      saw_end = true;
      break;
    } else {
      return fail("unknown keyword '" + keyword + "'");
    }
    if (fields.fail()) {
      return fail("missing or malformed fields");
    }
  }
  if (!saw_header) {
    return Status::Error("scenario parse error: missing 'scenario v1' header");
  }
  if (!saw_end) {
    return Status::Error("scenario parse error: missing 'end' terminator");
  }
  if (d.cubs < 1 || d.disks_per_cub < 1 || d.decluster < 1 ||
      d.decluster >= d.cubs * d.disks_per_cub) {
    return Status::Error("scenario parse error: invalid shape");
  }
  if (d.files < 1 || d.viewers < 0 || d.run_ms <= 0 || d.file_s <= 0) {
    return Status::Error("scenario parse error: invalid workload");
  }
  return d;
}

}  // namespace frontier
}  // namespace tiger
