// Background scenario execution for the frontier tournament.
//
// RunScenario is a pure function of its descriptor — one descriptor, one
// outcome, bit-for-bit — so the tournament's breadth-first levels can be
// *prefetched*: worker threads run upcoming scenarios while the serial search
// loop consumes outcomes in its original order. The search logic (budgets,
// verdict accounting, bisection, the envelope itself) never moves off the
// caller's thread, which is why the envelope stays byte-identical for every
// jobs count: parallelism only changes *when* an outcome is computed, never
// which outcomes the search observes or in what order.
//
// Get() semantics make the pool safe to over- or under-prefetch:
//   * finished in background   -> returned immediately;
//   * running in background    -> caller waits for that one scenario;
//   * queued but not started   -> caller claims it and runs it inline;
//   * never prefetched         -> caller runs it inline.
// Speculatively prefetched scenarios the search never asks for (a family
// died at a lower cardinality) are wasted background work, nothing more.

#ifndef SRC_FRONTIER_POOL_H_
#define SRC_FRONTIER_POOL_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/frontier/runner.h"
#include "src/frontier/scenario.h"

namespace tiger {
namespace frontier {

class ScenarioPool {
 public:
  // `jobs` <= 1 starts no workers: Prefetch becomes a no-op and every Get
  // computes inline — exactly the serial tournament.
  explicit ScenarioPool(int jobs);
  ~ScenarioPool();

  ScenarioPool(const ScenarioPool&) = delete;
  ScenarioPool& operator=(const ScenarioPool&) = delete;

  // Queues descriptors for background execution. Descriptors already queued
  // (by canonical ToText key) are skipped, so re-prefetching a level is free.
  void Prefetch(const std::vector<ScenarioDescriptor>& descriptors);

  // Returns the outcome for `descriptor`, from the prefetch cache when
  // available (see class comment for the fallback ladder).
  ScenarioOutcome Get(const ScenarioDescriptor& descriptor);

 private:
  struct Entry {
    enum class State { kQueued, kRunning, kDone } state = State::kQueued;
    ScenarioDescriptor descriptor;
    ScenarioOutcome outcome;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // Workers: work queued or shutdown.
  std::condition_variable done_cv_;   // Get(): some entry finished.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  std::deque<Entry*> queue_;  // FIFO of kQueued entries (prefetch order).
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace frontier
}  // namespace tiger

#endif  // SRC_FRONTIER_POOL_H_
