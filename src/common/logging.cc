#include "src/common/logging.h"

#include <cstdio>
#include <mutex>

namespace tiger {

namespace {

LogLevel g_level = LogLevel::kOff;
std::function<TimePoint()> g_time_source;
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void SetLogTimeSource(std::function<TimePoint()> source) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_time_source = std::move(source);
}

void LogMessage(LogLevel level, const std::string& tag, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::string when = g_time_source ? g_time_source().ToString() : std::string("-");
  std::fprintf(stderr, "[%s %s %s] %s\n", LevelName(level), when.c_str(), tag.c_str(),
               message.c_str());
}

}  // namespace tiger
