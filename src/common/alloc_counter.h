// Process-wide allocation counter for perf regression checks.
//
// When the build defines TIGER_COUNT_ALLOCS (cmake -DTIGER_COUNT_ALLOCS=ON),
// every global operator new is counted in a relaxed atomic. The microbench
// reads the counter around its hot loops to report allocs/event, and the
// sanitizer CI job builds with the hook on so a heap allocation sneaking back
// into the event hot path shows up as a nonzero steady-state number.
//
// Without the define, the functions below compile to a constant-zero stub so
// call sites need no #ifdefs.

#ifndef SRC_COMMON_ALLOC_COUNTER_H_
#define SRC_COMMON_ALLOC_COUNTER_H_

#include <cstdint>

namespace tiger {

// Total global operator-new calls since process start. Monotone; subtract two
// readings to count allocations in a region. Always 0 when counting is off.
uint64_t AllocCount();

// True when the binary was built with -DTIGER_COUNT_ALLOCS, i.e. AllocCount()
// readings are meaningful.
bool AllocCountingEnabled();

}  // namespace tiger

#endif  // SRC_COMMON_ALLOC_COUNTER_H_
