// Process-wide allocation counter for perf regression checks.
//
// When the build defines TIGER_COUNT_ALLOCS (cmake -DTIGER_COUNT_ALLOCS=ON),
// every global operator new is counted in a relaxed atomic. The microbench
// reads the counter around its hot loops to report allocs/event, and the
// sanitizer CI job builds with the hook on so a heap allocation sneaking back
// into the event hot path shows up as a nonzero steady-state number.
//
// Counting can be paused per thread (nesting) so measurement harnesses can
// exclude their own bookkeeping — result vectors, JSON writers — from the
// numbers they report. Pauses nest: counting resumes only when every pause on
// the thread has been matched by a resume.
//
// Without the define, the functions below compile to constant stubs so call
// sites need no #ifdefs.

#ifndef SRC_COMMON_ALLOC_COUNTER_H_
#define SRC_COMMON_ALLOC_COUNTER_H_

#include <cstdint>

namespace tiger {

// Total counted global operator-new calls since process start. Monotone;
// subtract two readings to count allocations in a region. Always 0 when
// counting is off.
uint64_t AllocCount();

// True when the binary was built with -DTIGER_COUNT_ALLOCS, i.e. AllocCount()
// readings are meaningful.
bool AllocCountingEnabled();

// Pause/resume counting on the calling thread. Calls nest: two pauses need
// two resumes. Resuming below depth zero is a no-op (never underflows).
// Allocations made while paused still succeed — they are just not counted.
void PauseAllocCounting();
void ResumeAllocCounting();
// Current nesting depth on this thread (0 = counting active).
int AllocCountingPauseDepth();

// RAII pause for a scope.
class ScopedAllocCountPause {
 public:
  ScopedAllocCountPause() { PauseAllocCounting(); }
  ~ScopedAllocCountPause() { ResumeAllocCounting(); }
  ScopedAllocCountPause(const ScopedAllocCountPause&) = delete;
  ScopedAllocCountPause& operator=(const ScopedAllocCountPause&) = delete;
};

}  // namespace tiger

#endif  // SRC_COMMON_ALLOC_COUNTER_H_
