// Deterministic random number generation.
//
// Every source of randomness in a Tiger simulation (disk performance jitter,
// network jitter, client file selection, request arrival times) draws from an
// explicitly seeded Rng so that entire experiments replay bit-for-bit.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"

namespace tiger {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    TIGER_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  // Exponentially distributed duration with the given mean.
  Duration Exponential(Duration mean) {
    TIGER_DCHECK(mean.micros() > 0);
    double lambda = 1.0 / static_cast<double>(mean.micros());
    double draw = std::exponential_distribution<double>(lambda)(engine_);
    return Duration::Micros(static_cast<int64_t>(draw));
  }

  // Uniform duration in [lo, hi].
  Duration UniformDuration(Duration lo, Duration hi) {
    return Duration::Micros(UniformInt(lo.micros(), hi.micros()));
  }

  // Normally distributed value, clamped to be non-negative.
  double GaussianNonNegative(double mean, double stddev) {
    double v = std::normal_distribution<double>(mean, stddev)(engine_);
    return v < 0 ? 0 : v;
  }

  // Picks a uniformly random element index of a non-empty container size.
  size_t PickIndex(size_t size) {
    TIGER_DCHECK(size > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(size) - 1));
  }

  // Derives an independent child generator; used to give each actor its own
  // stream so that adding randomness to one actor does not perturb others.
  Rng Fork() { return Rng(engine_()); }

  uint64_t NextRaw() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tiger

#endif  // SRC_COMMON_RNG_H_
