// Minimal JSON reader for the documents our own writers emit: flat-ish
// objects/arrays, numbers, strings. Shared by the offline consumers of
// bench_util.h's JsonWriter, profile.json and incident manifests
// (bench_compare, tigerstat, tigerwatch) — tools that deliberately depend on
// nothing but the standard library. String escapes are decoded (including
// \uXXXX with surrogate pairs, encoded as UTF-8) and nesting is bounded, so
// a malformed or hostile artifact fails parsing instead of corrupting or
// overflowing the reader. Still not a general-purpose JSON library: no
// duplicate-key handling, numbers parsed as double via strtod.
//
// Header-only so the tools can use it without linking any tiger library.

#ifndef SRC_COMMON_MINI_JSON_H_
#define SRC_COMMON_MINI_JSON_H_

#include <cctype>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace tiger {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject } type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  // Dotted-path lookup through nested objects ("counts.categories.msg_hop").
  const JsonValue* FindPath(const std::string& path) const {
    const JsonValue* node = this;
    size_t start = 0;
    while (node != nullptr && start <= path.size()) {
      const size_t dot = path.find('.', start);
      const std::string key =
          path.substr(start, dot == std::string::npos ? std::string::npos : dot - start);
      node = node->Find(key);
      if (dot == std::string::npos) {
        break;
      }
      start = dot + 1;
    }
    return node;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    *out = JsonValue();  // A reused value must not keep stale children.
    return ParseValue(out, 0) && (SkipSpace(), pos_ == text_.size());
  }

 private:
  // Containers deeper than this fail parsing: our writers emit ~4 levels, so
  // the bound only exists to keep a hostile artifact from exhausting the
  // stack through recursion.
  static constexpr int kMaxDepth = 64;

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool Literal(const char* s) {
    const size_t n = std::strlen(s);
    if (text_.compare(pos_, n, s) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    SkipSpace();
    if (pos_ >= text_.size() || depth > kMaxDepth) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  // Exactly four hex digits at pos_, as a code unit.
  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return false;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    *out = v;
    return true;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') {
      return false;
    }
    pos_++;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      const char c = text_[pos_];
      if (c != '\\') {
        out->push_back(c);
        pos_++;
        continue;
      }
      pos_++;  // backslash
      if (pos_ >= text_.size()) {
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) {
            return false;
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: the matching low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              return false;
            }
            pos_ += 2;
            uint32_t low = 0;
            if (!ParseHex4(&low) || low < 0xDC00 || low > 0xDFFF) {
              return false;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // Lone low surrogate.
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return false;  // Unknown escape.
      }
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    pos_++;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      pos_++;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      pos_++;
    }
    if (pos_ == start) {
      return false;
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    pos_++;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      pos_++;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element, depth + 1)) {
        return false;
      }
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    pos_++;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || !ParseString(&key)) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      pos_++;
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline bool LoadJsonFile(const std::string& path, JsonValue* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (!JsonParser(text).Parse(out)) {
    *error = path + ": not valid JSON";
    return false;
  }
  return true;
}

}  // namespace tiger

#endif  // SRC_COMMON_MINI_JSON_H_
