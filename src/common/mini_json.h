// Minimal JSON reader for the subset our own writers emit: flat-ish
// objects/arrays, numbers, strings without escapes we need to interpret.
// Shared by the offline consumers of bench_util.h's JsonWriter and of
// profile.json (bench_compare, tigerstat) — tools that deliberately depend on
// nothing but the standard library. Not a general-purpose JSON library: no
// unicode escapes, no duplicate-key handling, numbers parsed as double.
//
// Header-only so the tools can use it without linking any tiger library.

#ifndef SRC_COMMON_MINI_JSON_H_
#define SRC_COMMON_MINI_JSON_H_

#include <cctype>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace tiger {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject } type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  // Dotted-path lookup through nested objects ("counts.categories.msg_hop").
  const JsonValue* FindPath(const std::string& path) const {
    const JsonValue* node = this;
    size_t start = 0;
    while (node != nullptr && start <= path.size()) {
      const size_t dot = path.find('.', start);
      const std::string key =
          path.substr(start, dot == std::string::npos ? std::string::npos : dot - start);
      node = node->Find(key);
      if (dot == std::string::npos) {
        break;
      }
      start = dot + 1;
    }
    return node;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) { return ParseValue(out) && (SkipSpace(), pos_ == text_.size()); }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool Literal(const char* s) {
    const size_t n = std::strlen(s);
    if (text_.compare(pos_, n, s) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') {
      return false;
    }
    pos_++;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {  // Our writers emit no escapes we must decode.
        pos_++;
        if (pos_ >= text_.size()) {
          return false;
        }
      }
      out->push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    pos_++;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      pos_++;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      pos_++;
    }
    if (pos_ == start) {
      return false;
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    pos_++;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      pos_++;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) {
        return false;
      }
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    pos_++;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || !ParseString(&key)) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      pos_++;
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline bool LoadJsonFile(const std::string& path, JsonValue* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (!JsonParser(text).Parse(out)) {
    *error = path + ": not valid JSON";
    return false;
  }
  return true;
}

}  // namespace tiger

#endif  // SRC_COMMON_MINI_JSON_H_
