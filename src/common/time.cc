#include "src/common/time.h"

#include <cstdio>

namespace tiger {

std::string Duration::ToString() const {
  char buf[32];
  if (micros_ % 1000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(micros_ / 1000000));
  } else if (micros_ % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(micros_ / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(micros_));
  }
  return buf;
}

std::string TimePoint::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", seconds());
  return buf;
}

std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.ToString(); }
std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << t.ToString(); }

}  // namespace tiger
