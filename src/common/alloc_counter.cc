#include "src/common/alloc_counter.h"

#ifdef TIGER_COUNT_ALLOCS

#include <atomic>
#include <cstdlib>
#include <new>

namespace tiger {
namespace {

std::atomic<uint64_t> g_alloc_count{0};

// Per-thread pause nesting depth. Plain int: only the owning thread touches
// it, and operator new/delete may run before thread_local dynamic init, so it
// must be trivially constructible.
thread_local int g_pause_depth = 0;

inline void CountOne() {
  if (g_pause_depth == 0) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void* CountedAlloc(std::size_t size) {
  CountOne();
  if (size == 0) {
    size = 1;
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAllocNothrow(std::size_t size) noexcept {
  CountOne();
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAllocAligned(std::size_t size, std::size_t align) {
  CountOne();
  if (size == 0) {
    size = align;
  }
  // aligned_alloc requires size to be a multiple of alignment.
  std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAllocAlignedNothrow(std::size_t size, std::size_t align) noexcept {
  CountOne();
  if (size == 0) {
    size = align;
  }
  std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded);
}

}  // namespace

uint64_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }
bool AllocCountingEnabled() { return true; }
void PauseAllocCounting() { ++g_pause_depth; }
void ResumeAllocCounting() {
  if (g_pause_depth > 0) {
    --g_pause_depth;
  }
}
int AllocCountingPauseDepth() { return g_pause_depth; }

}  // namespace tiger

// Global replacements. Deletes are deliberately uncounted: the metric of
// interest is allocation pressure, and news == deletes in steady state.
void* operator new(std::size_t size) { return tiger::CountedAlloc(size); }
void* operator new[](std::size_t size) { return tiger::CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return tiger::CountedAllocNothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return tiger::CountedAllocNothrow(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return tiger::CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return tiger::CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return tiger::CountedAllocAlignedNothrow(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return tiger::CountedAllocAlignedNothrow(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}

#else  // !TIGER_COUNT_ALLOCS

namespace tiger {
uint64_t AllocCount() { return 0; }
bool AllocCountingEnabled() { return false; }
void PauseAllocCounting() {}
void ResumeAllocCounting() {}
int AllocCountingPauseDepth() { return 0; }
}  // namespace tiger

#endif  // TIGER_COUNT_ALLOCS
