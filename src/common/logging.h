// Minimal leveled logging with simulated-time prefixes.
//
// The sink is process-global but the time source is pluggable so log lines
// carry the *simulated* clock of the experiment that emitted them. Logging is
// off by default (benchmarks run silent); tests and examples turn it on.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

#include "src/common/time.h"

namespace tiger {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Minimum level that is emitted. Defaults to kOff.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Installs a provider for the simulated-time prefix. Pass nullptr to clear.
void SetLogTimeSource(std::function<TimePoint()> source);

void LogMessage(LogLevel level, const std::string& tag, const std::string& message);

namespace log_detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string tag) : level_(level), tag_(std::move(tag)) {}
  ~LogLine() { LogMessage(level_, tag_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};

}  // namespace log_detail

inline bool LogEnabled(LogLevel level) { return level >= GetLogLevel(); }

}  // namespace tiger

// Usage: TIGER_LOG(kInfo, "cub3") << "inserted viewer " << v << " into slot " << s;
#define TIGER_LOG(level, tag)                            \
  if (!::tiger::LogEnabled(::tiger::LogLevel::level)) {  \
  } else                                                 \
    ::tiger::log_detail::LogLine(::tiger::LogLevel::level, (tag))

#endif  // SRC_COMMON_LOGGING_H_
