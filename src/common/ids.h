// Strongly typed identifiers used throughout the Tiger system.
//
// Tiger numbers its disks in cub-minor order (disk i lives on cub i mod n), so
// confusing a disk index with a cub index is an easy and catastrophic mistake.
// Distinct wrapper types make such mix-ups compile errors.

#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace tiger {

template <typename Tag, typename Rep = uint32_t>
class TypedId {
 public:
  using rep_type = Rep;

  constexpr TypedId() : value_(kInvalid) {}
  explicit constexpr TypedId(Rep value) : value_(value) {}

  static constexpr TypedId Invalid() { return TypedId(); }

  constexpr Rep value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  constexpr auto operator<=>(const TypedId&) const = default;

 private:
  static constexpr Rep kInvalid = static_cast<Rep>(-1);
  Rep value_;
};

template <typename Tag, typename Rep>
std::ostream& operator<<(std::ostream& os, TypedId<Tag, Rep> id) {
  if (!id.valid()) {
    return os << "<invalid>";
  }
  return os << id.value();
}

// Index of a cub (content machine) in the ring, 0-based.
using CubId = TypedId<struct CubTag>;
// Global disk index in cub-minor order across the whole system.
using DiskId = TypedId<struct DiskTag>;
// Identifier of a content file in the catalog.
using FileId = TypedId<struct FileTag>;
// A viewer (client endpoint) known to the system.
using ViewerId = TypedId<struct ViewerTag>;
// Index of a slot in the (hallucinated) global disk schedule.
using SlotId = TypedId<struct SlotTag>;
// One particular start-play request by a viewer. Deschedules name an instance
// so that a stale deschedule can never kill a later play by the same viewer.
using PlayInstanceId = TypedId<struct PlayInstanceTag, uint64_t>;

}  // namespace tiger

template <typename Tag, typename Rep>
struct std::hash<tiger::TypedId<Tag, Rep>> {
  size_t operator()(const tiger::TypedId<Tag, Rep>& id) const {
    return std::hash<Rep>()(id.value());
  }
};

#endif  // SRC_COMMON_IDS_H_
