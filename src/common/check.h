// Invariant checking macros.
//
// TIGER_CHECK is always on (simulation correctness depends on these holding;
// a violated invariant means the protocol implementation is wrong, and
// continuing would silently corrupt experiment results). TIGER_DCHECK compiles
// away in NDEBUG builds and is used on hot paths. Both support streaming extra
// context: TIGER_CHECK(a == b) << "while inserting slot " << slot;

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace tiger {

[[noreturn]] void CheckFailure(const char* file, int line, const char* condition,
                               const std::string& message);

namespace check_detail {

// Collects an optional streamed message for a failing check and aborts when
// destroyed at the end of the failing statement.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() { CheckFailure(file_, line_, condition_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

// Swallows streamed messages for disabled checks.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace check_detail
}  // namespace tiger

// The while-loop body runs at most once: the builder's destructor is
// [[noreturn]]. This shape avoids dangling-else problems and permits streaming.
#define TIGER_CHECK(cond)  \
  while (!(cond))          \
  ::tiger::check_detail::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
#define TIGER_DCHECK(cond) \
  while (false)            \
  ::tiger::check_detail::NullStream()
#else
#define TIGER_DCHECK(cond) TIGER_CHECK(cond)
#endif

#endif  // SRC_COMMON_CHECK_H_
