// Strong time types for the simulated Tiger world.
//
// All simulation time is expressed in integer microseconds. Integer ticks keep
// schedule arithmetic exact: the Tiger schedule requires that slot boundaries,
// block play times and block service times compose without floating-point
// drift over multi-hour simulated runs.

#ifndef SRC_COMMON_TIME_H_
#define SRC_COMMON_TIME_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace tiger {

// A span of simulated time. May be negative (useful for lead/lag arithmetic).
class Duration {
 public:
  constexpr Duration() : micros_(0) {}

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(int64_t s) { return Duration(s * 1000000); }
  static constexpr Duration SecondsF(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr int64_t millis() const { return micros_ / 1000; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr Duration operator+(Duration o) const { return Duration(micros_ + o.micros_); }
  constexpr Duration operator-(Duration o) const { return Duration(micros_ - o.micros_); }
  constexpr Duration operator-() const { return Duration(-micros_); }
  constexpr Duration operator*(int64_t k) const { return Duration(micros_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(micros_ / k); }
  // Ratio of two durations; exact when divisible.
  constexpr int64_t operator/(Duration o) const { return micros_ / o.micros_; }
  constexpr Duration operator%(Duration o) const { return Duration(micros_ % o.micros_); }

  Duration& operator+=(Duration o) {
    micros_ += o.micros_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    micros_ -= o.micros_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t us) : micros_(us) {}
  int64_t micros_;
};

// An instant in simulated time, measured from simulation start.
class TimePoint {
 public:
  constexpr TimePoint() : micros_(0) {}

  static constexpr TimePoint FromMicros(int64_t us) { return TimePoint(us); }
  static constexpr TimePoint Zero() { return TimePoint(0); }
  static constexpr TimePoint Max() { return TimePoint(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(micros_ + d.micros()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(micros_ - d.micros()); }
  constexpr Duration operator-(TimePoint o) const { return Duration::Micros(micros_ - o.micros_); }

  TimePoint& operator+=(Duration d) {
    micros_ += d.micros();
    return *this;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr TimePoint(int64_t us) : micros_(us) {}
  int64_t micros_;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);

}  // namespace tiger

#endif  // SRC_COMMON_TIME_H_
