// Byte-buffer writer/reader for wire encoding.
//
// Little-endian, fixed-width fields; the reader reports truncation instead of
// crashing so corrupt frames from a real network can be rejected.

#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace tiger {

class ByteWriter {
 public:
  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = buffer_.size();
    buffer_.resize(offset + sizeof(T));
    std::memcpy(buffer_.data() + offset, &value, sizeof(T));
  }

  void PutBytes(const uint8_t* data, size_t size) {
    buffer_.insert(buffer_.end(), data, data + size);
  }

  void PutString(const std::string& s) {
    Put<uint32_t>(static_cast<uint32_t>(s.size()));
    PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  const std::vector<uint8_t>& bytes() const { return buffer_; }
  std::vector<uint8_t> Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buffer)
      : ByteReader(buffer.data(), buffer.size()) {}

  template <typename T>
  bool Get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset_ + sizeof(T) > size_) {
      failed_ = true;
      return false;
    }
    std::memcpy(out, data_ + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  bool GetBytes(uint8_t* out, size_t size) {
    if (offset_ + size > size_) {
      failed_ = true;
      return false;
    }
    std::memcpy(out, data_ + offset_, size);
    offset_ += size;
    return true;
  }

  bool GetString(std::string* out) {
    uint32_t size = 0;
    if (!Get(&size) || offset_ + size > size_) {
      failed_ = true;
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data_ + offset_), size);
    offset_ += size;
    return true;
  }

  bool failed() const { return failed_; }
  size_t remaining() const { return size_ - offset_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
  bool failed_ = false;
};

}  // namespace tiger

#endif  // SRC_COMMON_BYTES_H_
