// Byte-size and bitrate helpers.
//
// Bitrates are plain int64 bits/second; a wrapper type buys little because
// bitrates mix freely with byte counts and durations in the schedule math.

#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>

#include "src/common/check.h"
#include "src/common/time.h"

namespace tiger {

constexpr int64_t kKilobyte = 1024;
constexpr int64_t kMegabyte = 1024 * 1024;
constexpr int64_t kGigabyte = 1024 * 1024 * 1024;

constexpr int64_t Kilobits(int64_t v) { return v * 1000; }
constexpr int64_t Megabits(int64_t v) { return v * 1000 * 1000; }

// Time to move `bytes` at `bits_per_second`, rounded up to a whole microsecond.
inline Duration TransferTime(int64_t bytes, int64_t bits_per_second) {
  TIGER_DCHECK(bits_per_second > 0);
  // micros = bytes * 8 * 1e6 / bps, rounded up.
  const __int128 numerator = static_cast<__int128>(bytes) * 8 * 1000000 + bits_per_second - 1;
  return Duration::Micros(static_cast<int64_t>(numerator / bits_per_second));
}

// Bytes played in `d` at `bits_per_second` (rounded down to whole bytes).
inline int64_t BytesForDuration(Duration d, int64_t bits_per_second) {
  const __int128 bits = static_cast<__int128>(d.micros()) * bits_per_second / 1000000;
  return static_cast<int64_t>(bits / 8);
}

}  // namespace tiger

#endif  // SRC_COMMON_UNITS_H_
