// Lightweight Status / Result types for fallible public API operations.
//
// Used where a failure is a legitimate runtime outcome a caller must handle
// (admission rejected, file not found, schedule full) as opposed to a broken
// invariant, which is a TIGER_CHECK.

#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace tiger {

class Status {
 public:
  static Status Ok() { return Status(); }
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return !message_.has_value(); }
  const std::string& message() const {
    static const std::string kOk = "OK";
    return message_ ? *message_ : kOk;
  }

 private:
  Status() = default;
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::optional<std::string> message_;
};

template <typename T>
class Result {
 public:
  // Intentionally implicit: allows `return value;` and `return Status::Error(...)`.
  Result(T value) : value_(std::move(value)) {}              // NOLINT
  Result(Status status) : status_(std::move(status)) {       // NOLINT
    TIGER_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TIGER_CHECK(ok()) << status_.message();
    return *value_;
  }
  T& value() & {
    TIGER_CHECK(ok()) << status_.message();
    return *value_;
  }
  T&& value() && {
    TIGER_CHECK(ok()) << status_.message();
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::Ok();
};

}  // namespace tiger

#endif  // SRC_COMMON_RESULT_H_
