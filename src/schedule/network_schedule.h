// The two-dimensional network schedule of a multiple-bitrate Tiger (§3.2).
//
// The x-axis is time (one full lap is block_play_time × num_cubs, wrapping),
// the y-axis bandwidth (capped by a cub's NIC capacity). Every entry is
// exactly one block play time wide and as tall as its stream's bitrate; the
// total height at any instant is the load on the NIC servicing that part of
// the schedule. Entries may be firm or *reservations* (tentative space held
// by the two-phase insertion protocol of §4.2 until the viewer state arrives
// or the insertion aborts).
//
// Fragmentation: free bandwidth shorter than one block play time at a given
// height is unusable. The paper's fix — forcing starts to integral multiples
// of block_play_time / decluster — is exercised by the fragmentation bench.

#ifndef SRC_SCHEDULE_NETWORK_SCHEDULE_H_
#define SRC_SCHEDULE_NETWORK_SCHEDULE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/common/ids.h"
#include "src/common/time.h"

namespace tiger {

class NetworkSchedule {
 public:
  using EntryId = uint64_t;

  struct Entry {
    EntryId id = 0;
    Duration start;  // Offset within the schedule, [0, length).
    int64_t bps = 0;
    bool reservation = false;
    ViewerId viewer;
    PlayInstanceId instance;
  };

  NetworkSchedule(Duration block_play_time, int num_cubs, int64_t capacity_bps);

  Duration length() const { return length_; }
  Duration block_play_time() const { return block_play_time_; }
  int64_t capacity_bps() const { return capacity_bps_; }

  // Instantaneous committed bandwidth at `offset`.
  int64_t LoadAt(Duration offset) const;

  // Maximum load over the wrapped interval [start, start + width).
  int64_t PeakLoad(Duration start, Duration width) const;

  // Could a one-block-play-time entry of `bps` start at `start`?
  bool CanInsert(Duration start, int64_t bps) const {
    return PeakLoad(WrapOffset(start), block_play_time_) + bps <= capacity_bps_;
  }

  // Inserts without checking (callers check CanInsert; the two-phase protocol
  // deliberately inserts tentatively on a stale view and may have to abort).
  EntryId Insert(Duration start, int64_t bps, bool reservation, ViewerId viewer,
                 PlayInstanceId instance);

  bool Remove(EntryId id);
  // Flips a reservation to a firm entry. Returns false if unknown.
  bool CommitReservation(EntryId id);
  std::optional<EntryId> FindByInstance(PlayInstanceId instance) const;
  const Entry* Get(EntryId id) const;

  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [id, entry] : entries_) {
      fn(entry);
    }
  }

  size_t entry_count() const { return entries_.size(); }
  int64_t total_committed_bps() const { return total_bps_; }
  // Mean load over the whole schedule divided by capacity, in [0, 1].
  double MeanUtilization() const;

  // --- fragmentation analytics --------------------------------------------

  // Total measure (µs) of start offsets, sampled every `granularity`, at
  // which a stream of `bps` fits.
  Duration AdmissibleStartMeasure(int64_t bps, Duration granularity) const;

  // Free bandwidth-time area divided by total area (capacity × length).
  double FreeFraction() const;

  Duration WrapOffset(Duration offset) const;

 private:
  Duration block_play_time_;
  Duration length_;
  int64_t capacity_bps_;
  EntryId next_id_ = 1;
  int64_t total_bps_ = 0;
  std::unordered_map<EntryId, Entry> entries_;
  // Load-profile difference map over [0, length]: load(x) = prefix sum of
  // deltas at keys <= x. Wrapping entries contribute two segments.
  std::map<int64_t, int64_t> deltas_;

  void AddSegments(Duration start, int64_t bps, int sign);
};

}  // namespace tiger

#endif  // SRC_SCHEDULE_NETWORK_SCHEDULE_H_
