// Viewer state records — the currency of Tiger's distributed schedule.
//
// "A viewer state contains the address of the viewer, the file being played,
// the viewer's position in the file, the schedule slot number, the play
// sequence number (how far the viewer has gotten into the current play
// request), and some other bookkeeping information." (§4.1.1)
//
// Receipt must be idempotent (records are routinely double-sent for fault
// tolerance), so records carry the play instance id and sequence number that
// make duplicates recognizable. Mirror viewer states describe one declustered
// secondary fragment and carry the fragment index; their due times are spaced
// block_play_time/decluster apart rather than block_play_time (§4.1.1).
//
// The record serializes to a fixed 100-byte wire image — the size the paper
// uses when costing control traffic (§3.3).

#ifndef SRC_SCHEDULE_VIEWER_STATE_H_
#define SRC_SCHEDULE_VIEWER_STATE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "src/common/ids.h"
#include "src/common/time.h"

namespace tiger {

inline constexpr int64_t kViewerStateWireBytes = 100;

// Causal lineage carried inside the record's reserved "other bookkeeping"
// tail. Lets an offline auditor reconstruct each record's trip around the
// ring: which cub minted the chain, how many hops it has taken, and a
// Lamport stamp ordering it against every other control message it raced.
// Zero protocol effect — the schedule never reads these fields — and zero
// wire cost: the 100-byte image already reserved the space.
struct RecordLineage {
  // Set when the record was minted by a lineage-aware cub. A cleared flag
  // (e.g. a record decoded from an all-zero tail written by an older peer)
  // means every other field is meaningless.
  static constexpr uint16_t kTagged = 1u << 0;

  // Cub that minted the chain (insertion, bootstrap, or mirror takeover).
  uint32_t origin_cub = 0;
  // Monotone per-origin counter; (origin_cub, epoch) names the chain.
  uint32_t epoch = 0;
  // Successor hops since minting. In a healthy ring this tracks `sequence -
  // first_sequence`, which is what the TTL guard in Cub::OnViewerState leans
  // on to break re-forward loops.
  uint16_t hop_count = 0;
  uint16_t flags = 0;
  // Lamport stamp of the most recent send; merged (max+1) at each receive.
  uint64_t lamport = 0;

  bool tagged() const { return (flags & kTagged) != 0; }
  void MarkTagged() { flags |= kTagged; }
  // Stable 64-bit chain name for maps and trace flow ids.
  uint64_t ChainId() const {
    return (static_cast<uint64_t>(origin_cub) << 32) | epoch;
  }
};

// origin_cub value used for chains minted by the controller (start/kill
// messages); real cub ids are small and can never collide with it.
inline constexpr uint32_t kControllerLineageOrigin = 0xFFFFFFFFu;

// Wire size of a lineage header as PutLineage/GetLineage encode it:
// origin(4) + epoch(4) + hop_count(2) + flags(2) + lamport(8). Records absorb
// it inside their reserved 100-byte tail; messages that carry lineage beside
// a payload (start/kill) pay it explicitly in their WireBytes().
inline constexpr int64_t kLineageWireBytes = 20;

struct ViewerStateRecord {
  ViewerId viewer;
  // Network address of the client receiving the stream.
  uint32_t client_address = 0;
  // Identifies the particular start-play request; deschedules name it.
  PlayInstanceId instance;
  FileId file;
  // Block index within the file to send next.
  int64_t position = 0;
  // Schedule slot the viewer occupies.
  SlotId slot;
  // How many blocks of this play request have been scheduled so far.
  int64_t sequence = 0;
  int64_t bitrate_bps = 0;
  // Mirror records: which declustered fragment this describes (-1 = primary).
  int32_t mirror_fragment = -1;
  // When the described block (or fragment) is due at the network. Derivable
  // from slot + geometry for primaries; explicit so mirror timing (spaced
  // play_time/decluster) uses the same machinery.
  TimePoint due;
  // Audit-only causal lineage (see RecordLineage). Excluded from DedupKey so
  // duplicate detection keeps working across hops that restamp it.
  RecordLineage lineage;

  bool is_mirror() const { return mirror_fragment >= 0; }

  // Identity for idempotence: two records describing the same scheduled send.
  struct Key {
    uint64_t instance;
    uint32_t slot;
    int64_t sequence;
    int32_t mirror_fragment;
    auto operator<=>(const Key&) const = default;
  };
  Key DedupKey() const {
    return Key{instance.value(), slot.value(), sequence, mirror_fragment};
  }

  std::array<uint8_t, kViewerStateWireBytes> Encode() const;
  static std::optional<ViewerStateRecord> Decode(
      const std::array<uint8_t, kViewerStateWireBytes>& wire);

  std::string ToString() const;
};

// A deschedule request: "If this instance of viewer is in this schedule slot,
// remove the viewer." (§4.1.2)
struct DescheduleRecord {
  ViewerId viewer;
  PlayInstanceId instance;
  SlotId slot;

  auto operator<=>(const DescheduleRecord&) const = default;
  std::string ToString() const;
};

// Wire size of the kill record itself. The carrying DescheduleMsg adds its
// own lineage header on top (see DescheduleMsg::WireBytes).
inline constexpr int64_t kDescheduleWireBytes = 32;

}  // namespace tiger

#endif  // SRC_SCHEDULE_VIEWER_STATE_H_
