// Schedule geometry: the exact arithmetic of the Tiger disk schedule (§3.1).
//
// The schedule is a circular array of slots, one per stream of system
// capacity. Its length is (block play time × number of disks). The raw block
// service time comes from the bottleneck resource (the disk model's worst
// case, or the NIC); the slot count is the schedule length divided by it,
// rounded *down* to a whole number of slots, which stretches the effective
// service time — "the actual hardware capacity of the system as a whole is
// rounded down to the nearest stream".
//
// Slot boundaries are kept as exact rationals (length × i / slots) evaluated
// in integer microseconds, so every cub computes identical boundaries with no
// accumulated drift: slot i covers [ceil(L·i/S), ceil(L·(i+1)/S)).
//
// Each disk k has a play pointer that moves through the schedule in real
// time, one block play time behind disk k-1: pos_k(t) = (t − k·T_p) mod L.

#ifndef SRC_SCHEDULE_GEOMETRY_H_
#define SRC_SCHEDULE_GEOMETRY_H_

#include <cstdint>

#include "src/common/check.h"
#include "src/common/ids.h"
#include "src/common/time.h"

namespace tiger {

class ScheduleGeometry {
 public:
  ScheduleGeometry(int total_disks, Duration block_play_time, Duration raw_block_service_time);

  int total_disks() const { return total_disks_; }
  Duration block_play_time() const { return block_play_time_; }
  Duration schedule_length() const { return length_; }
  int64_t slot_count() const { return slots_; }

  // Effective (stretched) service time, rounded down to whole microseconds.
  // Exact boundaries never use this value; it is informational.
  Duration effective_block_service_time() const {
    return Duration::Micros(length_.micros() / slots_);
  }

  // Offset of slot i's start within the schedule, in [0, L).
  Duration SlotStartOffset(int64_t slot) const;

  // Slot containing schedule offset `pos` (0 <= pos < L).
  SlotId SlotAtOffset(Duration pos) const;

  // Position of disk k's play pointer at time t, in [0, L).
  Duration DiskPointer(DiskId disk, TimePoint t) const;

  // Earliest time >= t at which disk k's pointer sits at schedule offset
  // `offset`.
  TimePoint NextTimeAtOffset(DiskId disk, Duration offset, TimePoint t) const;

  // Earliest time >= t at which disk k's pointer reaches the start of `slot`
  // — i.e. when the block for the viewer in that slot is due at the network.
  TimePoint NextSlotStart(DiskId disk, SlotId slot, TimePoint t) const;

  SlotId NextSlot(SlotId slot) const {
    return SlotId(static_cast<uint32_t>((slot.value() + 1) % slots_));
  }

  struct ServingEvent {
    DiskId disk;
    TimePoint due;
  };
  // The disk that reaches `slot`'s start soonest at or after `t`, and when.
  // O(1): pointers are spaced exactly one block play time apart.
  ServingEvent SoonestServingDisk(SlotId slot, TimePoint t) const;

  // Offset arithmetic modulo the schedule length.
  Duration WrapOffset(Duration offset) const;

 private:
  int total_disks_;
  Duration block_play_time_;
  Duration length_;
  int64_t slots_;
};

// Parameters of the slot-ownership protocol (§4.1.3). A cub owns slot s via
// disk k while pos_k is inside [SlotStart(s) − scheduling_lead − duration,
// SlotStart(s) − scheduling_lead). The scheduling lead leaves time for the
// first disk read; the duration must be shorter than one block play time so
// that at most one disk pointer (hence one cub) can own a slot at a time.
struct OwnershipParams {
  Duration scheduling_lead;
  Duration duration;

  bool ValidFor(const ScheduleGeometry& geometry) const {
    return scheduling_lead >= geometry.effective_block_service_time() &&
           duration > Duration::Zero() && duration < geometry.block_play_time();
  }
};

class OwnershipWindows {
 public:
  OwnershipWindows(const ScheduleGeometry* geometry, OwnershipParams params)
      : geometry_(geometry), params_(params) {
    TIGER_CHECK(params.ValidFor(*geometry))
        << "ownership window must fit: lead >= service time, duration < play time";
  }

  const OwnershipParams& params() const { return params_; }

  // Does disk k's pointer sit inside the ownership window of `slot` at t?
  bool Owns(DiskId disk, SlotId slot, TimePoint t) const;

  struct OwnershipEvent {
    SlotId slot;
    TimePoint window_start;
    TimePoint window_end;   // Exclusive.
    TimePoint slot_start;   // When the block is due at the network.
  };

  // The first ownership window of disk k beginning at or after t.
  OwnershipEvent NextOwnership(DiskId disk, TimePoint t) const;

 private:
  const ScheduleGeometry* geometry_;
  OwnershipParams params_;
};

}  // namespace tiger

#endif  // SRC_SCHEDULE_GEOMETRY_H_
