#include "src/schedule/network_schedule.h"

#include <algorithm>

namespace tiger {

NetworkSchedule::NetworkSchedule(Duration block_play_time, int num_cubs, int64_t capacity_bps)
    : block_play_time_(block_play_time),
      length_(block_play_time * num_cubs),
      capacity_bps_(capacity_bps) {
  TIGER_CHECK(block_play_time > Duration::Zero());
  TIGER_CHECK(num_cubs >= 1);
  TIGER_CHECK(capacity_bps > 0);
}

Duration NetworkSchedule::WrapOffset(Duration offset) const {
  int64_t v = offset.micros() % length_.micros();
  if (v < 0) {
    v += length_.micros();
  }
  return Duration::Micros(v);
}

void NetworkSchedule::AddSegments(Duration start, int64_t bps, int sign) {
  const int64_t L = length_.micros();
  const int64_t a = start.micros();
  const int64_t b = a + block_play_time_.micros();
  auto add = [&](int64_t lo, int64_t hi) {
    if (lo >= hi) {
      return;
    }
    deltas_[lo] += sign * bps;
    deltas_[hi] -= sign * bps;
    if (deltas_[lo] == 0) {
      deltas_.erase(lo);
    }
    if (deltas_[hi] == 0) {
      deltas_.erase(hi);
    }
  };
  if (b <= L) {
    add(a, b);
  } else {
    add(a, L);
    add(0, b - L);
  }
}

int64_t NetworkSchedule::LoadAt(Duration offset) const {
  const int64_t x = WrapOffset(offset).micros();
  int64_t load = 0;
  for (const auto& [key, delta] : deltas_) {
    if (key > x) {
      break;
    }
    load += delta;
  }
  return load;
}

int64_t NetworkSchedule::PeakLoad(Duration start, Duration width) const {
  TIGER_CHECK(width > Duration::Zero() && width <= length_);
  const int64_t L = length_.micros();
  const int64_t a = WrapOffset(start).micros();
  const int64_t b = a + width.micros();  // May exceed L (wrapped interval).
  auto in_window = [&](int64_t x) {
    if (b <= L) {
      return x >= a && x < b;
    }
    return x >= a || x < b - L;
  };
  // Load just at the window start, plus running deltas across breakpoints
  // inside the window.
  int64_t peak = LoadAt(Duration::Micros(a));
  int64_t running = peak;
  // Walk breakpoints from a forward, wrapping once.
  auto walk = [&](int64_t lo, int64_t hi) {
    auto it = deltas_.upper_bound(lo);
    for (; it != deltas_.end() && it->first < hi; ++it) {
      running += it->second;
      if (in_window(it->first)) {
        peak = std::max(peak, running);
      }
    }
  };
  if (b <= L) {
    walk(a, b);
  } else {
    walk(a, L);
    // Wrap: load at offset 0 is the plain prefix at 0 (keys == 0 only).
    running = LoadAt(Duration::Zero());
    peak = std::max(peak, running);
    auto it = deltas_.upper_bound(0);
    for (; it != deltas_.end() && it->first < b - L; ++it) {
      running += it->second;
      peak = std::max(peak, running);
    }
  }
  return peak;
}

NetworkSchedule::EntryId NetworkSchedule::Insert(Duration start, int64_t bps, bool reservation,
                                                 ViewerId viewer, PlayInstanceId instance) {
  TIGER_CHECK(bps > 0);
  Entry entry;
  entry.id = next_id_++;
  entry.start = WrapOffset(start);
  entry.bps = bps;
  entry.reservation = reservation;
  entry.viewer = viewer;
  entry.instance = instance;
  AddSegments(entry.start, bps, +1);
  total_bps_ += bps;
  entries_.emplace(entry.id, entry);
  return entry.id;
}

bool NetworkSchedule::Remove(EntryId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return false;
  }
  AddSegments(it->second.start, it->second.bps, -1);
  total_bps_ -= it->second.bps;
  entries_.erase(it);
  return true;
}

bool NetworkSchedule::CommitReservation(EntryId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return false;
  }
  it->second.reservation = false;
  return true;
}

std::optional<NetworkSchedule::EntryId> NetworkSchedule::FindByInstance(
    PlayInstanceId instance) const {
  for (const auto& [id, entry] : entries_) {
    if (entry.instance == instance) {
      return id;
    }
  }
  return std::nullopt;
}

const NetworkSchedule::Entry* NetworkSchedule::Get(EntryId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

double NetworkSchedule::MeanUtilization() const {
  // Each entry occupies bps × block_play_time of bandwidth-time area.
  const double area = static_cast<double>(total_bps_) * block_play_time_.seconds();
  const double total = static_cast<double>(capacity_bps_) * length_.seconds();
  return area / total;
}

Duration NetworkSchedule::AdmissibleStartMeasure(int64_t bps, Duration granularity) const {
  TIGER_CHECK(granularity > Duration::Zero());
  int64_t admissible = 0;
  for (int64_t x = 0; x < length_.micros(); x += granularity.micros()) {
    if (CanInsert(Duration::Micros(x), bps)) {
      admissible += granularity.micros();
    }
  }
  return Duration::Micros(std::min(admissible, length_.micros()));
}

double NetworkSchedule::FreeFraction() const { return 1.0 - MeanUtilization(); }

}  // namespace tiger
