#include "src/schedule/geometry.h"

namespace tiger {

namespace {

// Floor division for possibly-negative numerators.
int64_t FloorDiv(int64_t a, int64_t b) {
  TIGER_DCHECK(b > 0);
  int64_t q = a / b;
  if (a % b != 0 && a < 0) {
    --q;
  }
  return q;
}

int64_t PositiveMod(int64_t a, int64_t b) {
  TIGER_DCHECK(b > 0);
  int64_t m = a % b;
  if (m < 0) {
    m += b;
  }
  return m;
}

}  // namespace

ScheduleGeometry::ScheduleGeometry(int total_disks, Duration block_play_time,
                                   Duration raw_block_service_time)
    : total_disks_(total_disks),
      block_play_time_(block_play_time),
      length_(block_play_time * total_disks) {
  TIGER_CHECK(total_disks >= 1);
  TIGER_CHECK(block_play_time > Duration::Zero());
  TIGER_CHECK(raw_block_service_time > Duration::Zero());
  TIGER_CHECK(raw_block_service_time <= length_)
      << "schedule shorter than one service time: system cannot source even one stream";
  slots_ = length_.micros() / raw_block_service_time.micros();
  TIGER_CHECK(slots_ >= 1);
}

Duration ScheduleGeometry::SlotStartOffset(int64_t slot) const {
  TIGER_DCHECK(slot >= 0 && slot <= slots_);
  // ceil(L * slot / S)
  const __int128 numerator =
      static_cast<__int128>(length_.micros()) * slot + slots_ - 1;
  return Duration::Micros(static_cast<int64_t>(numerator / slots_));
}

SlotId ScheduleGeometry::SlotAtOffset(Duration pos) const {
  TIGER_DCHECK(pos >= Duration::Zero() && pos < length_);
  const __int128 numerator = static_cast<__int128>(pos.micros()) * slots_;
  int64_t slot = static_cast<int64_t>(numerator / length_.micros());
  // Boundary correction: SlotStartOffset uses ceil, so an offset just below
  // ceil(L·(slot+1)/S) still belongs to `slot`; an offset equal to or above
  // it belongs to slot+1. The floor computation above can be off by one at
  // exact boundaries.
  if (pos >= SlotStartOffset(slot + 1) && slot + 1 < slots_) {
    ++slot;
  } else if (pos < SlotStartOffset(slot)) {
    --slot;
  }
  TIGER_DCHECK(slot >= 0 && slot < slots_);
  TIGER_DCHECK(pos >= SlotStartOffset(slot));
  TIGER_DCHECK(slot + 1 == slots_ || pos < SlotStartOffset(slot + 1));
  return SlotId(static_cast<uint32_t>(slot));
}

Duration ScheduleGeometry::DiskPointer(DiskId disk, TimePoint t) const {
  TIGER_DCHECK(static_cast<int>(disk.value()) < total_disks_);
  const int64_t shifted =
      t.micros() - static_cast<int64_t>(disk.value()) * block_play_time_.micros();
  return Duration::Micros(PositiveMod(shifted, length_.micros()));
}

Duration ScheduleGeometry::WrapOffset(Duration offset) const {
  return Duration::Micros(PositiveMod(offset.micros(), length_.micros()));
}

TimePoint ScheduleGeometry::NextTimeAtOffset(DiskId disk, Duration offset, TimePoint t) const {
  TIGER_DCHECK(offset >= Duration::Zero() && offset < length_);
  // Solve (x - k*T_p) mod L == offset, x >= t.
  const int64_t base = static_cast<int64_t>(disk.value()) * block_play_time_.micros() +
                       offset.micros();
  const int64_t L = length_.micros();
  // Smallest m with base + m*L >= t.
  const int64_t m = FloorDiv(t.micros() - base + L - 1, L);
  return TimePoint::FromMicros(base + m * L);
}

TimePoint ScheduleGeometry::NextSlotStart(DiskId disk, SlotId slot, TimePoint t) const {
  TIGER_DCHECK(slot.value() < slots_);
  Duration start = SlotStartOffset(static_cast<int64_t>(slot.value()));
  // Slot `slots_`'s start equals L; wrap to 0 just in case.
  if (start >= length_) {
    start = Duration::Zero();
  }
  return NextTimeAtOffset(disk, start, t);
}

ScheduleGeometry::ServingEvent ScheduleGeometry::SoonestServingDisk(SlotId slot,
                                                                    TimePoint t) const {
  // Pointers are spaced T_p apart, so exactly one disk reaches the slot's
  // start within any T_p window. Locate it arithmetically, then confirm with
  // the exact boundary math (off-by-one at slot boundaries is possible).
  Duration start = SlotStartOffset(static_cast<int64_t>(slot.value()));
  const int64_t tp = block_play_time_.micros();
  const int64_t length = length_.micros();
  // wait_k = (start - t + k*T_p) mod L; choose k so wait lands in [0, T_p).
  int64_t r = (start.micros() - t.micros()) % length;
  if (r < 0) {
    r += length;
  }
  int64_t k = ((length - r) / tp) % total_disks_;
  ServingEvent best{DiskId(0), TimePoint::Max()};
  for (int64_t delta = -1; delta <= 1; ++delta) {
    int64_t kk = (k + delta) % total_disks_;
    if (kk < 0) {
      kk += total_disks_;
    }
    DiskId disk(static_cast<uint32_t>(kk));
    TimePoint due = NextSlotStart(disk, slot, t);
    if (due < best.due) {
      best = ServingEvent{disk, due};
    }
  }
  return best;
}

bool OwnershipWindows::Owns(DiskId disk, SlotId slot, TimePoint t) const {
  OwnershipEvent next = NextOwnership(disk, t);
  // If t falls inside a window, NextOwnership returns that window (it treats
  // an in-progress window as "next").
  return next.slot == slot && t >= next.window_start && t < next.window_end;
}

OwnershipWindows::OwnershipEvent OwnershipWindows::NextOwnership(DiskId disk, TimePoint t) const {
  // The window for slot s opens when the pointer reaches SlotStart(s) −
  // lead_total and lasts `duration`. Equivalently: project the pointer
  // forward by lead_total; if the projection sits within `duration` past a
  // slot boundary, that slot's window is open now; otherwise the next
  // boundary opens the next window.
  const Duration lead_total = params_.scheduling_lead + params_.duration;
  const Duration pointer = geometry_->DiskPointer(disk, t);
  const Duration projected = geometry_->WrapOffset(pointer + lead_total);
  const SlotId current = geometry_->SlotAtOffset(projected);
  const Duration current_start =
      geometry_->SlotStartOffset(static_cast<int64_t>(current.value()));
  const Duration elapsed = projected - current_start;  // >= 0, < slot width.

  SlotId slot = current;
  TimePoint window_start;
  if (elapsed < params_.duration) {
    // Inside slot `current`'s window (possibly exactly at its start).
    window_start = t - elapsed;
  } else {
    // In the gap past `current`'s window; the next window belongs to the
    // following slot and opens at its boundary.
    int64_t next_index = (static_cast<int64_t>(current.value()) + 1) % geometry_->slot_count();
    slot = SlotId(static_cast<uint32_t>(next_index));
    Duration next_start =
        next_index == 0 ? geometry_->schedule_length()
                        : geometry_->SlotStartOffset(next_index);
    window_start = t + (next_start - projected);
  }
  const TimePoint window_end = window_start + params_.duration;
  const TimePoint slot_start = window_start + lead_total;
  TIGER_DCHECK(window_end > t);
  return OwnershipEvent{slot, window_start, window_end, slot_start};
}

}  // namespace tiger
