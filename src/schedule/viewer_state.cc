#include "src/schedule/viewer_state.h"

#include <cstdio>
#include <cstring>

namespace tiger {

namespace {

constexpr uint32_t kMagic = 0x54564653;  // "TVFS"
constexpr uint16_t kVersion = 1;

template <typename T>
void Put(std::array<uint8_t, kViewerStateWireBytes>& wire, size_t& offset, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(wire.data() + offset, &value, sizeof(T));
  offset += sizeof(T);
}

template <typename T>
T Get(const std::array<uint8_t, kViewerStateWireBytes>& wire, size_t& offset) {
  T value;
  std::memcpy(&value, wire.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::array<uint8_t, kViewerStateWireBytes> ViewerStateRecord::Encode() const {
  std::array<uint8_t, kViewerStateWireBytes> wire{};
  size_t offset = 0;
  Put(wire, offset, kMagic);
  Put(wire, offset, kVersion);
  Put(wire, offset, static_cast<uint16_t>(0));  // Reserved flags.
  Put(wire, offset, viewer.value());
  Put(wire, offset, client_address);
  Put(wire, offset, instance.value());
  Put(wire, offset, file.value());
  Put(wire, offset, position);
  Put(wire, offset, slot.value());
  Put(wire, offset, sequence);
  Put(wire, offset, bitrate_bps);
  Put(wire, offset, mirror_fragment);
  Put(wire, offset, due.micros());
  // The paper's "other bookkeeping information": audit lineage rides in the
  // reserved tail, so the wire image stays exactly 100 bytes.
  Put(wire, offset, lineage.origin_cub);
  Put(wire, offset, lineage.epoch);
  Put(wire, offset, lineage.hop_count);
  Put(wire, offset, lineage.flags);
  Put(wire, offset, lineage.lamport);
  // Remaining bytes stay zero.
  return wire;
}

std::optional<ViewerStateRecord> ViewerStateRecord::Decode(
    const std::array<uint8_t, kViewerStateWireBytes>& wire) {
  size_t offset = 0;
  if (Get<uint32_t>(wire, offset) != kMagic) {
    return std::nullopt;
  }
  if (Get<uint16_t>(wire, offset) != kVersion) {
    return std::nullopt;
  }
  Get<uint16_t>(wire, offset);  // Reserved.
  ViewerStateRecord record;
  record.viewer = ViewerId(Get<uint32_t>(wire, offset));
  record.client_address = Get<uint32_t>(wire, offset);
  record.instance = PlayInstanceId(Get<uint64_t>(wire, offset));
  record.file = FileId(Get<uint32_t>(wire, offset));
  record.position = Get<int64_t>(wire, offset);
  record.slot = SlotId(Get<uint32_t>(wire, offset));
  record.sequence = Get<int64_t>(wire, offset);
  record.bitrate_bps = Get<int64_t>(wire, offset);
  record.mirror_fragment = Get<int32_t>(wire, offset);
  record.due = TimePoint::FromMicros(Get<int64_t>(wire, offset));
  record.lineage.origin_cub = Get<uint32_t>(wire, offset);
  record.lineage.epoch = Get<uint32_t>(wire, offset);
  record.lineage.hop_count = Get<uint16_t>(wire, offset);
  record.lineage.flags = Get<uint16_t>(wire, offset);
  record.lineage.lamport = Get<uint64_t>(wire, offset);
  // An all-zero tail (pre-lineage encoder) leaves the tagged flag clear, so
  // old images decode as "no lineage" rather than a bogus chain.
  return record;
}

std::string ViewerStateRecord::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "viewer=%u inst=%llu file=%u pos=%lld slot=%u seq=%lld%s due=%.3fs",
                viewer.value(), static_cast<unsigned long long>(instance.value()), file.value(),
                static_cast<long long>(position), slot.value(), static_cast<long long>(sequence),
                is_mirror() ? " mirror" : "", due.seconds());
  return buf;
}

std::string DescheduleRecord::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "deschedule viewer=%u inst=%llu slot=%u", viewer.value(),
                static_cast<unsigned long long>(instance.value()), slot.value());
  return buf;
}

}  // namespace tiger
