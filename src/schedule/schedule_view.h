// A cub's local view of the (hallucinated) global disk schedule.
//
// The view stores only schedule entries near the cub's own disks — it is
// bounded by maxVStateLead ahead and a short retention behind, so its size
// does not grow with the system (§4, "a necessary but insufficient condition
// for scalability is that participants' views be limited...").
//
// The view enforces the two idempotence rules the protocol depends on:
//  * duplicate viewer states (records are routinely double-sent) are ignored;
//  * a held deschedule kills matching viewer states that arrive late, and
//    viewer states arriving later than the deschedule hold window are
//    discarded outright, so a viewer can never be spontaneously rescheduled
//    (§4.1.2).

#ifndef SRC_SCHEDULE_SCHEDULE_VIEW_H_
#define SRC_SCHEDULE_SCHEDULE_VIEW_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/schedule/viewer_state.h"
#include "src/trace/trace.h"

namespace tiger {

// Per-entry bookkeeping owned by the cub; the view only stores it.
struct ScheduleEntry {
  ViewerStateRecord record;
  TimePoint received;
  // --- cub-managed state ---
  bool read_issued = false;
  bool block_ready = false;
  // When servicing began (first read attempt); anchors the slot-service span.
  TimePoint service_start = TimePoint::Max();
  // A block buffer is charged to this entry (false for cache hits).
  bool buffer_held = false;
  bool sent = false;
  bool forwarded = false;
  // True for the duplicate copy held purely for fault tolerance (this cub is
  // not the serving cub for the record's disk).
  bool backup_only = false;
  // Set when a failure makes this cub responsible for mirror generation.
  bool takeover_processed = false;
  // Set when a transient read error made the serving cub dispatch this
  // block's declustered mirror chain; the primary's missed send is covered.
  bool mirror_recovery = false;
};

class ScheduleView {
 public:
  enum class ApplyResult {
    kNew,                 // Accepted; a new entry was created.
    kDuplicate,           // Same DedupKey already present; ignored.
    kKilledByDeschedule,  // A held deschedule matches; discarded.
    kTooLate,             // Older than the deschedule hold window; discarded.
    kConflict,            // Another viewer already occupies the slot at this due time.
  };

  // `late_horizon` mirrors the deschedule hold duration: records whose due
  // time is more than this far in the past are rejected (kTooLate).
  explicit ScheduleView(Duration late_horizon) : late_horizon_(late_horizon) {}

  // Emits an event for every apply/deschedule/evict on the owning cub's
  // track. The owning cub re-wires this after rebuilding its view on rejoin.
  void SetTrace(Tracer* tracer, TraceTrackId track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  ApplyResult ApplyViewerState(const ViewerStateRecord& record, TimePoint now);

  // Removes all entries matching (viewer, instance, slot) and records a hold.
  // Returns the removed entries (so the caller can cancel their work) and
  // whether the hold is new — duplicate deschedules refresh the hold but
  // report new_hold=false, which callers use to forward each deschedule once.
  struct DescheduleOutcome {
    std::vector<ScheduleEntry> removed;
    bool new_hold = false;
  };
  DescheduleOutcome ApplyDeschedule(const DescheduleRecord& deschedule, TimePoint now,
                                    TimePoint hold_until);

  bool HoldsDescheduleFor(const ViewerStateRecord& record, TimePoint now) const;

  // Is there a non-mirror entry for `slot` due at exactly `due`? Used by the
  // insertion logic: due times are exact shared arithmetic, so the occupying
  // viewer's record (if it has arrived) matches precisely.
  bool SlotOccupiedAt(SlotId slot, TimePoint due) const;

  // Any entry (including mirrors) for this slot with due in (due-eps, due+eps)?
  bool SlotBusyNear(SlotId slot, TimePoint due, Duration epsilon) const;

  // Entry lookup by dedup key; nullptr if absent.
  ScheduleEntry* Find(const ViewerStateRecord::Key& key);

  // All live entries (cub iterates to drive reads/sends/forwards).
  template <typename Fn>
  void ForEachEntry(Fn&& fn) {
    for (auto& [slot, bucket] : buckets_) {
      for (ScheduleEntry& entry : bucket.entries) {
        fn(entry);
      }
    }
  }

  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [slot, bucket] : buckets_) {
      for (const ScheduleEntry& entry : bucket.entries) {
        fn(entry);
      }
    }
  }

  // Drops entries whose due time precedes `horizon` and expired holds.
  // Returns the number of entries evicted.
  int EvictBefore(TimePoint entry_horizon, TimePoint now);

  size_t entry_count() const;
  size_t hold_count() const;

 private:
  struct Hold {
    DescheduleRecord deschedule;
    TimePoint hold_until;
  };
  struct SlotBucket {
    std::vector<ScheduleEntry> entries;
    std::vector<Hold> holds;
  };

  ApplyResult ApplyViewerStateImpl(const ViewerStateRecord& record, TimePoint now);

  Duration late_horizon_;
  std::unordered_map<SlotId, SlotBucket> buckets_;
  Tracer* tracer_ = nullptr;
  TraceTrackId trace_track_ = 0;
};

}  // namespace tiger

#endif  // SRC_SCHEDULE_SCHEDULE_VIEW_H_
