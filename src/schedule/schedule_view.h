// A cub's local view of the (hallucinated) global disk schedule.
//
// The view stores only schedule entries near the cub's own disks — it is
// bounded by maxVStateLead ahead and a short retention behind, so its size
// does not grow with the system (§4, "a necessary but insufficient condition
// for scalability is that participants' views be limited...").
//
// The view enforces the two idempotence rules the protocol depends on:
//  * duplicate viewer states (records are routinely double-sent) are ignored;
//  * a held deschedule kills matching viewer states that arrive late, and
//    viewer states arriving later than the deschedule hold window are
//    discarded outright, so a viewer can never be spontaneously rescheduled
//    (§4.1.2).

#ifndef SRC_SCHEDULE_SCHEDULE_VIEW_H_
#define SRC_SCHEDULE_SCHEDULE_VIEW_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/net/payload_pool.h"
#include "src/schedule/viewer_state.h"
#include "src/trace/trace.h"

namespace tiger {

// Per-entry bookkeeping owned by the cub; the view only stores it.
struct ScheduleEntry {
  ViewerStateRecord record;
  TimePoint received;
  // --- cub-managed state ---
  bool read_issued = false;
  bool block_ready = false;
  // When servicing began (first read attempt); anchors the slot-service span.
  TimePoint service_start = TimePoint::Max();
  // A block buffer is charged to this entry (false for cache hits).
  bool buffer_held = false;
  bool sent = false;
  bool forwarded = false;
  // True for the duplicate copy held purely for fault tolerance (this cub is
  // not the serving cub for the record's disk).
  bool backup_only = false;
  // Set when a failure makes this cub responsible for mirror generation.
  bool takeover_processed = false;
  // Set when a transient read error made the serving cub dispatch this
  // block's declustered mirror chain; the primary's missed send is covered.
  bool mirror_recovery = false;
};

class ScheduleView {
 public:
  // Entry storage draws from the thread-local payload pool: slot insert /
  // deschedule / evict churn recycles buffers and hash nodes instead of
  // hitting the heap per event (the protocol layer's last allocator — see
  // ROADMAP item 1). Zero steady-state operator-new calls once warm.
  using EntryVec = std::vector<ScheduleEntry, PoolAllocator<ScheduleEntry>>;

  enum class ApplyResult {
    kNew,                 // Accepted; a new entry was created.
    kDuplicate,           // Same DedupKey already present; ignored.
    kKilledByDeschedule,  // A held deschedule matches; discarded.
    kTooLate,             // Older than the deschedule hold window; discarded.
    kConflict,            // Another viewer already occupies the slot at this due time.
  };

  // `late_horizon` mirrors the deschedule hold duration: records whose due
  // time is more than this far in the past are rejected (kTooLate).
  // `reserve_buckets` pre-mints that many recycled map nodes (see
  // free_nodes_) so the eviction/creation cycle never waits for the stash to
  // reach its working level; nodes are minted one at a time through the map,
  // which keeps its bucket-array growth — and thus iteration order — on the
  // same trajectory as an unreserved view.
  explicit ScheduleView(Duration late_horizon, size_t reserve_buckets = 0)
      : late_horizon_(late_horizon),
        stash_limit_(reserve_buckets == 0 ? SIZE_MAX : reserve_buckets) {
    free_nodes_.reserve(reserve_buckets);
    while (free_nodes_.size() < reserve_buckets) {
      const SlotId dummy(UINT32_MAX - static_cast<uint32_t>(free_nodes_.size()));
      SlotBucket& bucket = buckets_[dummy];
      bucket.entries.reserve(4);
      // One hold's worth of capacity up front: a deschedule parks a hold in
      // the slot's bucket on every cub it reaches, and recycled nodes keep
      // their vector buffers when stashed — without the reserve, each kill
      // that lands in a never-held bucket permanently moves one pool block
      // into the stash, slowly draining the pool class the message hot path
      // draws from.
      bucket.holds.reserve(1);
      free_nodes_.push_back(buckets_.extract(dummy));
    }
  }

  // Emits an event for every apply/deschedule/evict on the owning cub's
  // track. The owning cub re-wires this after rebuilding its view on rejoin.
  void SetTrace(Tracer* tracer, TraceTrackId track) {
    tracer_ = tracer;
    trace_track_ = track;
  }

  ApplyResult ApplyViewerState(const ViewerStateRecord& record, TimePoint now);

  // Removes all entries matching (viewer, instance, slot) and records a hold.
  // Returns the removed entries (so the caller can cancel their work) and
  // whether the hold is new — duplicate deschedules refresh the hold but
  // report new_hold=false, which callers use to forward each deschedule once.
  struct DescheduleOutcome {
    EntryVec removed;  // Pool-backed: the outcome itself allocates nothing in steady state.
    bool new_hold = false;
  };
  DescheduleOutcome ApplyDeschedule(const DescheduleRecord& deschedule, TimePoint now,
                                    TimePoint hold_until);

  bool HoldsDescheduleFor(const ViewerStateRecord& record, TimePoint now) const;

  // Is there a non-mirror entry for `slot` due at exactly `due`? Used by the
  // insertion logic: due times are exact shared arithmetic, so the occupying
  // viewer's record (if it has arrived) matches precisely.
  bool SlotOccupiedAt(SlotId slot, TimePoint due) const;

  // Any entry (including mirrors) for this slot with due in (due-eps, due+eps)?
  bool SlotBusyNear(SlotId slot, TimePoint due, Duration epsilon) const;

  // Entry lookup by dedup key; nullptr if absent.
  ScheduleEntry* Find(const ViewerStateRecord::Key& key);

  // All live entries (cub iterates to drive reads/sends/forwards).
  template <typename Fn>
  void ForEachEntry(Fn&& fn) {
    for (auto& [slot, bucket] : buckets_) {
      for (ScheduleEntry& entry : bucket.entries) {
        fn(entry);
      }
    }
  }

  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [slot, bucket] : buckets_) {
      for (const ScheduleEntry& entry : bucket.entries) {
        fn(entry);
      }
    }
  }

  // Drops entries whose due time precedes `horizon` and expired holds.
  // Returns the number of entries evicted.
  int EvictBefore(TimePoint entry_horizon, TimePoint now);

  // O(1): maintained at every insert/remove so per-checkpoint digests (the
  // flight recorder samples every cub once a sim-second) never walk the
  // bucket map.
  size_t entry_count() const { return live_entries_; }
  size_t hold_count() const { return live_holds_; }

 private:
  struct Hold {
    DescheduleRecord deschedule;
    TimePoint hold_until;
  };
  struct SlotBucket {
    EntryVec entries;
    std::vector<Hold, PoolAllocator<Hold>> holds;
  };
  using BucketMap =
      std::unordered_map<SlotId, SlotBucket, std::hash<SlotId>, std::equal_to<SlotId>,
                         PoolAllocator<std::pair<const SlotId, SlotBucket>>>;

  ApplyResult ApplyViewerStateImpl(const ViewerStateRecord& record, TimePoint now);

  // Reuses a retained node from free_nodes_ when the slot is absent, so the
  // steady-state erase/create bucket churn (slot ownership rotates around the
  // ring) never round-trips through the allocator.
  SlotBucket& GetOrCreateBucket(SlotId slot);

  Duration late_horizon_;
  BucketMap buckets_;
  // Map nodes extracted by EvictBefore, kept for reuse with their entry/hold
  // vector capacities intact. Every cub's EvictionTick fires at the same sim
  // instant, so freeing these to the (capped) payload pool would overflow it
  // at large shapes and the next second's inserts would miss; retaining them
  // here makes the recycle per-view and burst-proof. Capped at the prewarm
  // reserve: deschedule holds park a transient bucket on every cub they
  // reach, and an uncapped stash would absorb each one permanently — the
  // stash grows with kill history and the size class it drains is the same
  // one kill-forward message blocks come from. Overflow nodes are destroyed
  // instead, returning their blocks to the pool.
  std::vector<BucketMap::node_type> free_nodes_;
  size_t stash_limit_;
  size_t live_entries_ = 0;  // Sum of bucket entry counts.
  size_t live_holds_ = 0;    // Sum of bucket hold counts.
  Tracer* tracer_ = nullptr;
  TraceTrackId trace_track_ = 0;
};

}  // namespace tiger

#endif  // SRC_SCHEDULE_SCHEDULE_VIEW_H_
