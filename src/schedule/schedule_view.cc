#include "src/schedule/schedule_view.h"

#include <algorithm>
#include <iterator>

#include "src/common/check.h"
#include "src/trace/profiler.h"

namespace tiger {

ScheduleView::SlotBucket& ScheduleView::GetOrCreateBucket(SlotId slot) {
  auto it = buckets_.find(slot);
  if (it != buckets_.end()) {
    return it->second;
  }
  if (!free_nodes_.empty()) {
    BucketMap::node_type node = std::move(free_nodes_.back());
    free_nodes_.pop_back();
    node.key() = slot;
    return buckets_.insert(std::move(node)).position->second;
  }
  return buckets_[slot];
}

ScheduleView::ApplyResult ScheduleView::ApplyViewerState(const ViewerStateRecord& record,
                                                         TimePoint now) {
  TIGER_PROF_SCOPE(kScheduleApply);
  const ApplyResult result = ApplyViewerStateImpl(record, now);
  TIGER_TRACE_INSTANT(tracer_, trace_track_, TraceEventType::kVStateApply,
                      TraceArgs{.viewer = record.viewer.value(),
                                .slot = record.slot.value(),
                                .a = record.position,
                                .b = static_cast<int64_t>(result)});
  return result;
}

ScheduleView::ApplyResult ScheduleView::ApplyViewerStateImpl(const ViewerStateRecord& record,
                                                             TimePoint now) {
  if (record.due + late_horizon_ < now) {
    // So late that any deschedule for it would already have been discarded;
    // accepting it could resurrect a dead viewer. Drop it (§4.1.2).
    return ApplyResult::kTooLate;
  }
  if (HoldsDescheduleFor(record, now)) {
    return ApplyResult::kKilledByDeschedule;
  }
  SlotBucket& bucket = GetOrCreateBucket(record.slot);
  for (const ScheduleEntry& entry : bucket.entries) {
    if (entry.record.DedupKey() == record.DedupKey()) {
      return ApplyResult::kDuplicate;
    }
  }
  // Two different viewers (or two instances) must never be scheduled into the
  // same slot for the same service time.
  for (const ScheduleEntry& entry : bucket.entries) {
    if (!entry.record.is_mirror() && !record.is_mirror() && entry.record.due == record.due &&
        (entry.record.viewer != record.viewer || entry.record.instance != record.instance)) {
      return ApplyResult::kConflict;
    }
  }
  ScheduleEntry entry;
  entry.record = record;
  entry.received = now;
  bucket.entries.push_back(entry);
  ++live_entries_;
  return ApplyResult::kNew;
}

ScheduleView::DescheduleOutcome ScheduleView::ApplyDeschedule(const DescheduleRecord& deschedule,
                                                              TimePoint now,
                                                              TimePoint hold_until) {
  TIGER_PROF_SCOPE(kDeschedule);
  SlotBucket& bucket = GetOrCreateBucket(deschedule.slot);
  DescheduleOutcome outcome;
  auto matches = [&](const ScheduleEntry& entry) {
    return entry.record.viewer == deschedule.viewer &&
           entry.record.instance == deschedule.instance && entry.record.slot == deschedule.slot;
  };
  // Stable in-place partition by hand: std::stable_partition allocates a
  // temporary buffer on every call, and deschedules are forwarded around the
  // whole ring — each cub re-applies every copy, so this path must stay on
  // the pool like the rest of the view. Kept and removed entries both retain
  // their relative order.
  size_t keep = 0;
  for (size_t i = 0; i < bucket.entries.size(); ++i) {
    if (matches(bucket.entries[i])) {
      outcome.removed.push_back(std::move(bucket.entries[i]));
    } else {
      if (keep != i) {
        bucket.entries[keep] = std::move(bucket.entries[i]);
      }
      ++keep;
    }
  }
  bucket.entries.resize(keep);
  live_entries_ -= outcome.removed.size();

  // Record (or refresh) the hold. Duplicate deschedules are idempotent.
  bool found = false;
  for (Hold& hold : bucket.holds) {
    if (hold.deschedule == deschedule) {
      hold.hold_until = std::max(hold.hold_until, hold_until);
      found = true;
      break;
    }
  }
  if (!found) {
    bucket.holds.push_back(Hold{deschedule, hold_until});
    ++live_holds_;
    outcome.new_hold = true;
  }
  TIGER_TRACE_INSTANT(tracer_, trace_track_, TraceEventType::kDescheduleApply,
                      TraceArgs{.viewer = deschedule.viewer.value(),
                                .slot = deschedule.slot.value(),
                                .a = static_cast<int64_t>(outcome.removed.size()),
                                .b = outcome.new_hold ? 1 : 0});
  (void)now;
  return outcome;
}

bool ScheduleView::HoldsDescheduleFor(const ViewerStateRecord& record, TimePoint now) const {
  auto it = buckets_.find(record.slot);
  if (it == buckets_.end()) {
    return false;
  }
  for (const Hold& hold : it->second.holds) {
    if (hold.hold_until >= now && hold.deschedule.viewer == record.viewer &&
        hold.deschedule.instance == record.instance && hold.deschedule.slot == record.slot) {
      return true;
    }
  }
  return false;
}

bool ScheduleView::SlotOccupiedAt(SlotId slot, TimePoint due) const {
  auto it = buckets_.find(slot);
  if (it == buckets_.end()) {
    return false;
  }
  for (const ScheduleEntry& entry : it->second.entries) {
    if (!entry.record.is_mirror() && entry.record.due == due) {
      return true;
    }
  }
  return false;
}

bool ScheduleView::SlotBusyNear(SlotId slot, TimePoint due, Duration epsilon) const {
  auto it = buckets_.find(slot);
  if (it == buckets_.end()) {
    return false;
  }
  for (const ScheduleEntry& entry : it->second.entries) {
    Duration gap = entry.record.due > due ? entry.record.due - due : due - entry.record.due;
    if (gap < epsilon) {
      return true;
    }
  }
  return false;
}

ScheduleEntry* ScheduleView::Find(const ViewerStateRecord::Key& key) {
  auto it = buckets_.find(SlotId(key.slot));
  if (it == buckets_.end()) {
    return nullptr;
  }
  for (ScheduleEntry& entry : it->second.entries) {
    if (entry.record.DedupKey() == key) {
      return &entry;
    }
  }
  return nullptr;
}

int ScheduleView::EvictBefore(TimePoint entry_horizon, TimePoint now) {
  int evicted = 0;
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    SlotBucket& bucket = it->second;
    auto entry_end = std::remove_if(bucket.entries.begin(), bucket.entries.end(),
                                    [&](const ScheduleEntry& e) {
                                      return e.record.due < entry_horizon;
                                    });
    evicted += static_cast<int>(bucket.entries.end() - entry_end);
    live_entries_ -= static_cast<size_t>(bucket.entries.end() - entry_end);
    bucket.entries.erase(entry_end, bucket.entries.end());
    auto hold_end = std::remove_if(bucket.holds.begin(), bucket.holds.end(),
                                   [&](const Hold& h) { return h.hold_until < now; });
    live_holds_ -= static_cast<size_t>(bucket.holds.end() - hold_end);
    bucket.holds.erase(hold_end, bucket.holds.end());
    // Emptied buckets must leave the map, not stay: every slot in the ring
    // eventually passes through every cub, so retained empties would grow the
    // map toward the global slot count and ForEachEntry — which ForwardTick
    // runs on every flush — would pay for the whole ring instead of the live
    // window. Their nodes are stashed for reuse rather than destroyed; see
    // free_nodes_.
    if (bucket.entries.empty() && bucket.holds.empty()) {
      auto next = std::next(it);
      if (free_nodes_.size() < stash_limit_) {
        free_nodes_.push_back(buckets_.extract(it));
      } else {
        // Stash already holds the steady-state working set; this node is
        // kill-transient overflow. Destroy it so its block (and its vectors')
        // go back to the payload pool rather than accreting here.
        buckets_.erase(it);
      }
      it = next;
    } else {
      ++it;
    }
  }
  if (evicted > 0) {
    TIGER_TRACE_INSTANT(tracer_, trace_track_, TraceEventType::kViewEvict,
                        TraceArgs{.a = evicted});
  }
  return evicted;
}

}  // namespace tiger
