#include "src/client/viewer.h"

#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/net/payload_pool.h"

namespace tiger {

namespace {

// A block completing this much after its steady-state position is "late".
constexpr Duration kLateTolerance = Duration::Millis(500);
// A block not complete this long past its position is declared lost.
constexpr Duration kLossTolerance = Duration::Seconds(2);
constexpr Duration kCheckInterval = Duration::Seconds(1);

}  // namespace

ViewerClient::ViewerClient(Simulator* sim, ViewerId id, const TigerConfig* config,
                           const Catalog* catalog, MessageBus* net)
    : Actor(sim, "viewer" + std::to_string(id.value())),
      id_(id),
      config_(config),
      catalog_(catalog),
      net_(net) {
  address_ = net_->Attach(this, name(), config->client_nic_bps);
}

void ViewerClient::RequestPlay(FileId file, int64_t start_position) {
  TIGER_CHECK(!play_.has_value()) << "viewer already playing";
  TIGER_CHECK(addresses_ != nullptr);
  const FileInfo& info = catalog_->Get(file);
  TIGER_CHECK(start_position >= 0 && start_position < info.block_count)
      << "seek out of range";
  ActivePlay play;
  play.file = file;
  play.requested_at = Now();
  play.start_position = start_position;
  play.blocks_expected = info.block_count - start_position;
  play_ = std::move(play);
  stats_.plays_requested++;

  auto request = MakePooledMessage<ClientRequestMsg>();
  request->op = ClientRequestMsg::Op::kStart;
  request->viewer = id_;
  request->client_address = address_;
  request->file = file;
  request->start_position = start_position;
  net_->Send(address_, addresses_->controller, ClientRequestMsg::WireBytes(),
             std::move(request));

  if (!check_timer_running_) {
    check_timer_running_ = true;
    After(kCheckInterval, [this] { CheckDeadlines(); });
  }
}

void ViewerClient::StartLooping(std::function<FileId()> picker, Duration think_time,
                                int64_t initial_position) {
  picker_ = std::move(picker);
  think_time_ = think_time;
  RequestPlay(picker_(), initial_position);
}

void ViewerClient::RequestStop() {
  if (!play_.has_value()) {
    return;
  }
  auto request = MakePooledMessage<ClientRequestMsg>();
  request->op = ClientRequestMsg::Op::kStop;
  request->viewer = id_;
  request->client_address = address_;
  request->file = play_->file;
  if (play_->instance.has_value()) {
    request->instance = *play_->instance;  // Lets a stubless controller route the kill.
  }
  net_->Send(address_, addresses_->controller, ClientRequestMsg::WireBytes(),
             std::move(request));
  FinishPlay(/*completed=*/false);
}

void ViewerClient::Pause() {
  if (!play_.has_value()) {
    return;
  }
  const FileInfo& info = catalog_->Get(play_->file);
  int64_t next_block = play_->start_position + play_->check_cursor;
  if (next_block >= info.block_count) {
    RequestStop();  // Nothing left to resume into.
    return;
  }
  paused_position_ = std::make_pair(play_->file, next_block);
  RequestStop();
}

void ViewerClient::Resume() {
  if (!paused_position_.has_value() || play_.has_value()) {
    return;
  }
  auto [file, position] = *paused_position_;
  paused_position_.reset();
  RequestPlay(file, position);
}

void ViewerClient::HandleMessage(const MessageEnvelope& envelope) {
  if (halted()) {
    return;
  }
  const auto& msg = static_cast<const TigerMessage&>(*envelope.payload);
  if (msg.kind == MsgKind::kBlockData) {
    OnBlockData(static_cast<const BlockDataMsg&>(msg));
  }
}

void ViewerClient::OnBlockData(const BlockDataMsg& msg) {
  if (!play_.has_value() || msg.viewer != id_ || msg.file != play_->file) {
    return;  // Tail of a stopped play, or stale delivery.
  }
  ActivePlay& play = *play_;
  if (play.instance.has_value() && *play.instance != msg.instance) {
    return;
  }
  if (!play.instance.has_value()) {
    play.instance = msg.instance;
  }
  // Progress is tracked relative to the play's start position.
  const int64_t position = msg.position - play.start_position;
  if (position < 0) {
    return;  // Stale block from before a seek boundary; not ours.
  }
  if (position < play.check_cursor) {
    return;  // Already accounted (probably as lost).
  }
  BlockProgress& progress = play.progress[position];
  if (progress.complete) {
    return;
  }
  if (msg.mirror_fragment >= 0) {
    stats_.fragments_received++;
    progress.fragments++;
    if (progress.fragments < config_->shape.decluster_factor) {
      return;
    }
  }
  progress.complete = true;
  stats_.blocks_complete++;
  if (qos_ != nullptr) {
    qos_->RecordClientBlock(id_);
  }

  if (!play.first_block_complete.has_value()) {
    play.first_block_complete = Now();
    stats_.plays_started++;
    const double latency = (Now() - play.requested_at).seconds();
    startup_latency_.Add(latency);
    start_samples_.push_back(StartSample{play.requested_at, latency});
  } else if (position > 0) {
    const TimePoint expected =
        *play.first_block_complete + config_->block_play_time * position;
    if (Now() > expected + kLateTolerance) {
      stats_.late_blocks++;
      if (qos_ != nullptr) {
        // Ledger positions are absolute block indexes — the key the serving
        // cub annotated.
        qos_->RecordClientLate(Now(), id_, msg.position);
      }
    }
  }
  RetireBlocks();
}

void ViewerClient::RetireBlocks() {
  if (!play_.has_value()) {
    return;
  }
  ActivePlay& play = *play_;
  if (!play.first_block_complete.has_value()) {
    return;
  }
  // Retire completed positions and positions whose loss deadline has passed.
  while (play.check_cursor < play.blocks_expected) {
    const TimePoint deadline = *play.first_block_complete +
                               config_->block_play_time * play.check_cursor + kLossTolerance;
    auto it = play.progress.find(play.check_cursor);
    const bool complete = it != play.progress.end() && it->second.complete;
    if (complete) {
      play.progress.erase(it);
      play.check_cursor++;
      continue;
    }
    if (Now() < deadline) {
      break;
    }
    stats_.lost_blocks++;
    loss_times_.push_back(*play.first_block_complete +
                          config_->block_play_time * play.check_cursor);
    if (qos_ != nullptr) {
      qos_->RecordClientLost(Now(), id_, play.start_position + play.check_cursor);
    }
    if (it != play.progress.end()) {
      play.progress.erase(it);
    }
    play.check_cursor++;
  }
  if (play.check_cursor >= play.blocks_expected) {
    FinishPlay(/*completed=*/true);
  }
}

void ViewerClient::CheckDeadlines() {
  check_timer_running_ = false;
  RetireBlocks();
  if (play_.has_value()) {
    check_timer_running_ = true;
    After(kCheckInterval, [this] { CheckDeadlines(); });
  }
}

void ViewerClient::FinishPlay(bool completed) {
  if (completed) {
    stats_.plays_completed++;
  }
  play_.reset();
  if (picker_) {
    After(think_time_ + Duration::Millis(1), [this] {
      if (!play_.has_value()) {
        RequestPlay(picker_());
      }
    });
  }
}

}  // namespace tiger
