// The §5 ramp experiment: load the server toward its rated capacity in steps
// of 30 streams, settle, and record component loads at each step. Shared by
// the Figure 8 (unfailed), Figure 9 (one cub failed) and Figure 10 (startup
// latency) benches.

#ifndef SRC_CLIENT_RAMP_EXPERIMENT_H_
#define SRC_CLIENT_RAMP_EXPERIMENT_H_

#include <optional>
#include <vector>

#include "src/client/testbed.h"

namespace tiger {

struct RampOptions {
  int step_size = 30;
  int max_streams = 602;
  // Settle time after each step before measuring (paper: "at least 50s").
  Duration step_interval = Duration::Seconds(50);
  // Trailing window within the step over which means are computed.
  Duration measure_window = Duration::Seconds(30);
  // New viewers' requests are staggered over this span at each step.
  Duration stagger = Duration::Seconds(10);
  // If set, this cub is failed before the ramp begins (Figure 9).
  std::optional<CubId> fail_cub;
  // Cub whose control traffic / disks are probed. In failed runs pass a cub
  // that mirrors for the failed one (the paper probed exactly that).
  CubId probe_cub{0};
  // Settling time before the ramp starts (covers failure detection).
  Duration warmup = Duration::Seconds(12);
};

struct RampStepResult {
  int target_streams = 0;
  int64_t active_streams = 0;
  double mean_cub_cpu = 0;
  double controller_cpu = 0;
  double mean_disk_util = 0;        // Across all living cubs' disks.
  double probe_cub_disk_util = 0;   // The probed (mirroring) cub's disks.
  double probe_control_bps = 0;     // Control bytes/s sent by the probe cub.
  int64_t server_missed_blocks = 0;  // Cumulative.
  int64_t client_lost_blocks = 0;    // Cumulative.
};

struct RampResult {
  std::vector<RampStepResult> steps;
  // All stream-start samples, tagged with the schedule load (active streams /
  // capacity) at request time — Figure 10's scatter.
  struct StartPoint {
    double schedule_load = 0;  // In [0, 1].
    double latency_seconds = 0;
  };
  std::vector<StartPoint> starts;
  ViewerClient::Stats client_totals;
  Cub::Counters cub_totals;
};

RampResult RunRampExperiment(Testbed& testbed, const RampOptions& options);

}  // namespace tiger

#endif  // SRC_CLIENT_RAMP_EXPERIMENT_H_
