// A viewer client: requests streams and verifies their timely delivery.
//
// Mirrors the measurement client of §5: "a special client application that
// does not render any video, but rather simply makes sure that the expected
// data arrives on time". It tracks startup latency (request to last byte of
// the first block), late blocks, and lost blocks — the client-side loss
// reports of the reliability table.

#ifndef SRC_CLIENT_VIEWER_H_
#define SRC_CLIENT_VIEWER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "src/common/ids.h"
#include "src/core/address_book.h"
#include "src/core/config.h"
#include "src/core/messages.h"
#include "src/layout/catalog.h"
#include "src/net/network.h"
#include "src/sim/actor.h"
#include "src/stats/histogram.h"
#include "src/stats/qos.h"

namespace tiger {

class ViewerClient : public Actor, public NetworkEndpoint {
 public:
  struct Stats {
    int64_t plays_requested = 0;
    int64_t plays_started = 0;   // First block arrived.
    int64_t plays_completed = 0;
    int64_t blocks_complete = 0;
    int64_t fragments_received = 0;
    int64_t late_blocks = 0;
    int64_t lost_blocks = 0;
  };

  ViewerClient(Simulator* sim, ViewerId id, const TigerConfig* config, const Catalog* catalog,
               MessageBus* net);

  void SetAddressBook(const AddressBook* addresses) { addresses_ = addresses; }
  // Reports observed glitches (and the complete-block denominator) to the
  // system's QoS ledger, where they join the cubs' cause annotations.
  void SetQosLedger(QosLedger* qos) { qos_ = qos; }

  // Requests one play of `file` now, from `start_position` (0 = beginning).
  // The client tracks it to completion.
  void RequestPlay(FileId file, int64_t start_position = 0);

  // Requests plays forever: on completion of each play, picks the next file
  // via `picker` and requests it after `think_time`. The first play begins at
  // `initial_position` (later loops start from the beginning), which lets a
  // workload enter steady state immediately.
  void StartLooping(std::function<FileId()> picker, Duration think_time = Duration::Zero(),
                    int64_t initial_position = 0);

  // Sends a stop request for the current play.
  void RequestStop();

  // VCR controls, composed from stop + seek: Pause remembers the next
  // unwatched block and stops; Resume starts a fresh play instance from it.
  void Pause();
  void Resume();
  bool paused() const { return paused_position_.has_value(); }

  ViewerId id() const { return id_; }
  NetAddress address() const { return address_; }
  const Stats& stats() const { return stats_; }
  // Startup latencies in seconds, one sample per started play.
  const Histogram& startup_latency() const { return startup_latency_; }
  // Each startup sample paired with the time the request was issued (for the
  // load-vs-latency scatter of Figure 10).
  struct StartSample {
    TimePoint requested_at;
    double latency_seconds = 0;
  };
  const std::vector<StartSample>& start_samples() const { return start_samples_; }
  // Expected-arrival instants of blocks that were declared lost (the client
  // "logs" inspected by the §5 reconfiguration measurement).
  const std::vector<TimePoint>& loss_times() const { return loss_times_; }
  bool playing() const { return play_.has_value(); }

  // NetworkEndpoint:
  void HandleMessage(const MessageEnvelope& envelope) override;

 private:
  struct BlockProgress {
    int fragments = 0;
    bool complete = false;
  };
  struct ActivePlay {
    FileId file;
    TimePoint requested_at;
    std::optional<PlayInstanceId> instance;
    std::optional<TimePoint> first_block_complete;
    int64_t start_position = 0;
    // Blocks this play covers: block_count - start_position.
    int64_t blocks_expected = 0;
    // Next position whose deadline has not yet been checked.
    int64_t check_cursor = 0;
    std::unordered_map<int64_t, BlockProgress> progress;
  };

  void OnBlockData(const BlockDataMsg& msg);
  void RetireBlocks();
  void CheckDeadlines();
  void FinishPlay(bool completed);

  ViewerId id_;
  const TigerConfig* config_;
  const Catalog* catalog_;
  MessageBus* net_;
  NetAddress address_ = kInvalidAddress;
  const AddressBook* addresses_ = nullptr;
  QosLedger* qos_ = nullptr;

  std::optional<ActivePlay> play_;
  std::function<FileId()> picker_;
  Duration think_time_;
  Stats stats_;
  Histogram startup_latency_;
  std::vector<StartSample> start_samples_;
  std::vector<TimePoint> loss_times_;
  // Set while paused: (file, next block to watch).
  std::optional<std::pair<FileId, int64_t>> paused_position_;
  bool check_timer_running_ = false;
};

}  // namespace tiger

#endif  // SRC_CLIENT_VIEWER_H_
