// A live Tiger cluster: the unmodified protocol actors (Cub, Controller,
// ViewerClient) each running in their own thread with their own wall-clock
// executor, communicating exclusively through wire-encoded frames over real
// loopback TCP sockets — the "multi-process simulation on one box"
// configuration, with threads standing in for processes so the harness can
// collect results in-memory.
//
// Nothing in src/core knows which transport it is on: the cluster passes a
// TcpBus where the deterministic tests pass the simulated Network.

#ifndef SRC_CLIENT_TCP_CLUSTER_H_
#define SRC_CLIENT_TCP_CLUSTER_H_

#include <cstdint>

#include "src/common/time.h"

namespace tiger {

struct TcpClusterOptions {
  int cubs = 4;
  int file_blocks = 12;
  // Simulated seconds per wall second.
  double speedup = 4.0;
  Duration run_time = Duration::Seconds(20);
  // 0: derive a port range from the pid.
  uint16_t base_port = 0;
  uint64_t seed = 1;
  // If >= 0, power-cut this cub (its thread stops, sockets close) at
  // `fail_at` simulated seconds: deadman detection and mirror takeover then
  // run over the real sockets.
  int fail_cub = -1;
  Duration fail_at = Duration::Seconds(6);
};

struct TcpClusterResult {
  bool ok = false;
  int64_t blocks_complete = 0;
  int64_t lost_blocks = 0;
  int64_t late_blocks = 0;
  int64_t plays_completed = 0;
  double startup_latency_s = 0;
  int64_t frames_on_the_wire = 0;  // Across all nodes.
  int64_t cub_inserts = 0;
  int64_t records_received = 0;
  int64_t fragments_received = 0;
  int64_t takeovers = 0;
  int64_t failures_detected = 0;
};

TcpClusterResult RunTcpCluster(const TcpClusterOptions& options);

}  // namespace tiger

#endif  // SRC_CLIENT_TCP_CLUSTER_H_
