#include "src/client/ramp_experiment.h"

#include <algorithm>

namespace tiger {

RampResult RunRampExperiment(Testbed& testbed, const RampOptions& options) {
  TigerSystem& system = testbed.system();
  RampResult result;

  testbed.Start();
  if (options.fail_cub.has_value()) {
    // Failed for the entire duration of the run (§5): cut power just after
    // boot, then let the deadman protocol settle during warmup.
    system.FailCubAt(TimePoint::FromMicros(100000), *options.fail_cub);
  }
  testbed.RunFor(options.warmup);

  struct StepWindow {
    TimePoint begin;
    TimePoint end;
    int target = 0;
  };
  std::vector<StepWindow> windows;

  int added = 0;
  while (added < options.max_streams) {
    const int step = std::min(options.step_size, options.max_streams - added);
    const TimePoint step_begin = testbed.sim().Now();
    testbed.AddLoopingViewers(step, options.stagger);
    added += step;
    testbed.RunFor(options.step_interval);
    const TimePoint step_end = testbed.sim().Now();
    windows.push_back(StepWindow{step_begin, step_end, added});

    const TimePoint a = step_end - options.measure_window;
    const TimePoint b = step_end;
    RampStepResult row;
    row.target_streams = added;
    row.active_streams = testbed.ActiveViewerCount();
    row.mean_cub_cpu = system.MeanCubCpu(a, b);
    row.controller_cpu = system.ControllerCpu(a, b);
    row.mean_disk_util = system.MeanDiskUtilization(a, b);
    row.probe_cub_disk_util = system.CubDiskUtilization(options.probe_cub, a, b);
    row.probe_control_bps = system.CubControlTrafficBps(options.probe_cub, a, b);
    row.server_missed_blocks = system.TotalCubCounters().server_missed_blocks;
    row.client_lost_blocks = testbed.TotalClientStats().lost_blocks;
    result.steps.push_back(row);
  }

  // Tag every start sample with the schedule load of the step it landed in.
  const double capacity = static_cast<double>(system.geometry().slot_count());
  for (const ViewerClient::StartSample& sample : testbed.AllStartSamples()) {
    double load = 0;
    for (const StepWindow& w : windows) {
      if (sample.requested_at >= w.begin && sample.requested_at < w.end) {
        load = static_cast<double>(w.target) / capacity;
        break;
      }
    }
    result.starts.push_back(RampResult::StartPoint{load, sample.latency_seconds});
  }

  result.client_totals = testbed.TotalClientStats();
  result.cub_totals = system.TotalCubCounters();
  return result;
}

}  // namespace tiger
