#include "src/client/tcp_cluster.h"

#include <unistd.h>

#include <atomic>
#include <latch>
#include <thread>
#include <vector>

#include "src/client/viewer.h"
#include "src/core/controller.h"
#include "src/core/cub.h"
#include "src/core/tcp_bus.h"

namespace tiger {

TcpClusterResult RunTcpCluster(const TcpClusterOptions& options) {
  TcpClusterResult result;

  // Shared, read-only state (identical on every "machine", as the real Tiger
  // distributes its catalog and configuration out of band).
  TigerConfig config;
  config.shape = SystemShape{options.cubs, 1, 2};
  Catalog catalog(config.block_play_time, config.block_bytes, /*single_bitrate=*/true);
  Result<FileId> file =
      catalog.AddFile("content", config.max_stream_bps,
                      config.block_play_time * options.file_blocks, DiskId(0));
  TIGER_CHECK(file.ok());
  StripeLayout layout(config.shape);
  ScheduleGeometry geometry = config.MakeGeometry();

  // Node indices double as network addresses: 0 = controller,
  // 1..cubs = cubs, cubs+1 = the viewer client.
  const int nodes = options.cubs + 2;
  uint16_t base = options.base_port != 0
                      ? options.base_port
                      : static_cast<uint16_t>(24800 + (getpid() * 7) % 400);
  std::vector<uint16_t> topology;
  for (int i = 0; i < nodes; ++i) {
    topology.push_back(static_cast<uint16_t>(base + i));
  }
  AddressBook book;
  book.controller = 0;
  for (int c = 0; c < options.cubs; ++c) {
    book.cubs.push_back(static_cast<NetAddress>(c + 1));
  }
  const NetAddress client_address = static_cast<NetAddress>(options.cubs + 1);

  // All buses must be listening before any actor starts sending.
  std::latch listening(static_cast<std::ptrdiff_t>(nodes));
  std::atomic<int64_t> frames_total{0};
  std::atomic<int64_t> inserts_total{0};
  std::atomic<int64_t> records_total{0};
  std::atomic<int64_t> takeovers_total{0};
  std::atomic<int64_t> detections_total{0};

  std::vector<std::thread> threads;

  // Controller node.
  threads.emplace_back([&] {
    RealtimeExecutor executor(options.speedup);
    TcpBus bus(&executor, topology, /*my_index=*/0, config.tcp_retry);
    Controller controller(&executor.sim(), &config, &catalog, &layout, &bus);
    controller.SetAddressBook(&book);
    bus.Start();
    listening.arrive_and_wait();
    executor.Run(TimePoint::Zero() + options.run_time);
    bus.Stop();
    frames_total.fetch_add(bus.frames_sent() + bus.frames_received());
  });

  // Cub nodes.
  for (int c = 0; c < options.cubs; ++c) {
    threads.emplace_back([&, c] {
      RealtimeExecutor executor(options.speedup);
      TcpBus bus(&executor, topology, static_cast<NetAddress>(c + 1), config.tcp_retry);
      Rng rng(options.seed * 1000 + static_cast<uint64_t>(c));
      Cub cub(&executor.sim(), CubId(static_cast<uint32_t>(c)), &config, &catalog, &layout,
              &geometry, &bus, rng.Fork());
      SimulatedDisk disk(&executor.sim(), "disk" + std::to_string(c),
                         cub.GlobalDiskId(0), config.disk_model, rng.Fork());
      cub.AttachDisks({&disk});
      cub.SetAddressBook(&book);
      bus.Start();
      listening.arrive_and_wait();
      cub.Start();
      TimePoint until = TimePoint::Zero() + options.run_time;
      if (options.fail_cub == c) {
        // Power cut: this machine simply stops mid-run; its sockets close.
        until = TimePoint::Zero() + options.fail_at;
      }
      executor.Run(until);
      bus.Stop();
      frames_total.fetch_add(bus.frames_sent() + bus.frames_received());
      inserts_total.fetch_add(cub.counters().inserts);
      records_total.fetch_add(cub.counters().records_received);
      takeovers_total.fetch_add(cub.counters().takeovers);
      detections_total.fetch_add(cub.counters().failures_detected);
    });
  }

  // Client node.
  threads.emplace_back([&] {
    RealtimeExecutor executor(options.speedup);
    TcpBus bus(&executor, topology, client_address, config.tcp_retry);
    ViewerClient viewer(&executor.sim(), ViewerId(1), &config, &catalog, &bus);
    viewer.SetAddressBook(&book);
    bus.Start();
    listening.arrive_and_wait();
    executor.sim().ScheduleAt(TimePoint::Zero() + Duration::Seconds(1),
                              [&viewer, &file] { viewer.RequestPlay(file.value()); });
    executor.Run(TimePoint::Zero() + options.run_time);
    bus.Stop();
    frames_total.fetch_add(bus.frames_sent() + bus.frames_received());

    result.blocks_complete = viewer.stats().blocks_complete;
    result.lost_blocks = viewer.stats().lost_blocks;
    result.late_blocks = viewer.stats().late_blocks;
    result.plays_completed = viewer.stats().plays_completed;
    result.fragments_received = viewer.stats().fragments_received;
    if (!viewer.startup_latency().empty()) {
      result.startup_latency_s = viewer.startup_latency().Mean();
    }
  });

  for (std::thread& thread : threads) {
    thread.join();
  }
  result.frames_on_the_wire = frames_total.load();
  result.cub_inserts = inserts_total.load();
  result.records_received = records_total.load();
  result.takeovers = takeovers_total.load();
  result.failures_detected = detections_total.load();
  if (options.fail_cub >= 0) {
    // Losses are confined to the detection window; the play still finishes.
    result.ok = result.plays_completed == 1 &&
                result.blocks_complete + result.lost_blocks == options.file_blocks;
  } else {
    result.ok = result.plays_completed == 1 && result.lost_blocks == 0 &&
                result.blocks_complete == options.file_blocks;
  }
  return result;
}

}  // namespace tiger
