// Testbed: a TigerSystem plus a fleet of viewer clients and the measurement
// machinery the §5 experiments need. This is the top-level facade examples,
// tests and benches drive.

#ifndef SRC_CLIENT_TESTBED_H_
#define SRC_CLIENT_TESTBED_H_

#include <memory>
#include <string>
#include <vector>

#include "src/client/viewer.h"
#include "src/core/system.h"
#include "src/stats/histogram.h"

namespace tiger {

class Testbed {
 public:
  explicit Testbed(TigerConfig config, uint64_t seed = 1);

  TigerSystem& system() { return system_; }
  Simulator& sim() { return system_.sim(); }

  // Adds `count` hour-long 2 Mbit/s-style content files (bitrate taken from
  // the config's max stream rate), as in §5's 64-file content set.
  void AddContent(int count, Duration file_duration);

  // Creates one viewer that loops over random catalog files forever.
  ViewerClient& AddLoopingViewer();
  // Creates one viewer playing a specific file once.
  ViewerClient& AddViewer(FileId file);

  // Requests `count` new looping viewers, with request times staggered
  // uniformly over `stagger` (so a step of 30 adds does not arrive as a
  // thundering herd). With `steady_state`, each viewer's first play begins
  // at a uniformly random file position, as if it had been running for a
  // long time already.
  void AddLoopingViewers(int count, Duration stagger, bool steady_state = false);

  void Start() { system_.Start(); }
  // Route through the system so one call drives either engine (serial
  // simulator or the sharded ShardEngine).
  void RunFor(Duration d) { system_.RunFor(d); }
  void RunUntil(TimePoint t) { system_.RunUntil(t); }

  // --- aggregate client statistics ---
  ViewerClient::Stats TotalClientStats() const;
  // All startup samples across viewers (Figure 10's scatter).
  std::vector<ViewerClient::StartSample> AllStartSamples() const;
  int64_t ActiveViewerCount() const;

  const std::vector<std::unique_ptr<ViewerClient>>& viewers() const { return viewers_; }

 private:
  FileId PickRandomFile();

  TigerSystem system_;
  Rng client_rng_;
  std::vector<std::unique_ptr<ViewerClient>> viewers_;
  std::vector<FileId> files_;
  uint32_t next_viewer_id_ = 1;
};

}  // namespace tiger

#endif  // SRC_CLIENT_TESTBED_H_
