#include "src/client/testbed.h"

#include <utility>

namespace tiger {

Testbed::Testbed(TigerConfig config, uint64_t seed)
    : system_(config, seed), client_rng_(seed ^ 0x9e3779b97f4a7c15ULL) {}

void Testbed::AddContent(int count, Duration file_duration) {
  for (int i = 0; i < count; ++i) {
    Result<FileId> file = system_.AddFile("content" + std::to_string(files_.size()),
                                          system_.config().max_stream_bps, file_duration);
    TIGER_CHECK(file.ok()) << file.status().message();
    files_.push_back(file.value());
  }
}

FileId Testbed::PickRandomFile() {
  TIGER_CHECK(!files_.empty()) << "no content; call AddContent first";
  return files_[client_rng_.PickIndex(files_.size())];
}

ViewerClient& Testbed::AddLoopingViewer() {
  auto viewer = std::make_unique<ViewerClient>(&sim(), ViewerId(next_viewer_id_++),
                                               &system_.config(), &system_.catalog(),
                                               &system_.net());
  viewer->SetAddressBook(&system_.addresses());
  viewer->SetQosLedger(system_.qos_sink());
  ViewerClient& ref = *viewer;
  viewers_.push_back(std::move(viewer));
  ref.StartLooping([this] { return PickRandomFile(); });
  return ref;
}

ViewerClient& Testbed::AddViewer(FileId file) {
  auto viewer = std::make_unique<ViewerClient>(&sim(), ViewerId(next_viewer_id_++),
                                               &system_.config(), &system_.catalog(),
                                               &system_.net());
  viewer->SetAddressBook(&system_.addresses());
  viewer->SetQosLedger(system_.qos_sink());
  ViewerClient& ref = *viewer;
  viewers_.push_back(std::move(viewer));
  ref.RequestPlay(file);
  return ref;
}

void Testbed::AddLoopingViewers(int count, Duration stagger, bool steady_state) {
  for (int i = 0; i < count; ++i) {
    auto viewer = std::make_unique<ViewerClient>(&sim(), ViewerId(next_viewer_id_++),
                                                 &system_.config(), &system_.catalog(),
                                                 &system_.net());
    viewer->SetAddressBook(&system_.addresses());
    viewer->SetQosLedger(system_.qos_sink());
    ViewerClient* raw = viewer.get();
    viewers_.push_back(std::move(viewer));
    Duration delay = stagger > Duration::Zero()
                         ? client_rng_.UniformDuration(Duration::Zero(), stagger)
                         : Duration::Zero();
    sim().ScheduleAfter(delay, [this, raw, steady_state] {
      FileId first = PickRandomFile();
      int64_t position = 0;
      if (steady_state) {
        int64_t blocks = system_.catalog().Get(first).block_count;
        position = client_rng_.UniformInt(0, blocks - 1);
      }
      raw->StartLooping([this] { return PickRandomFile(); }, Duration::Zero(), position);
    });
  }
}

ViewerClient::Stats Testbed::TotalClientStats() const {
  ViewerClient::Stats total;
  for (const auto& viewer : viewers_) {
    const ViewerClient::Stats& s = viewer->stats();
    total.plays_requested += s.plays_requested;
    total.plays_started += s.plays_started;
    total.plays_completed += s.plays_completed;
    total.blocks_complete += s.blocks_complete;
    total.fragments_received += s.fragments_received;
    total.late_blocks += s.late_blocks;
    total.lost_blocks += s.lost_blocks;
  }
  return total;
}

std::vector<ViewerClient::StartSample> Testbed::AllStartSamples() const {
  std::vector<ViewerClient::StartSample> samples;
  for (const auto& viewer : viewers_) {
    const auto& s = viewer->start_samples();
    samples.insert(samples.end(), s.begin(), s.end());
  }
  return samples;
}

int64_t Testbed::ActiveViewerCount() const {
  int64_t n = 0;
  for (const auto& viewer : viewers_) {
    if (viewer->playing()) {
      ++n;
    }
  }
  return n;
}

}  // namespace tiger
