// Figure 10: stream startup latency versus schedule load.
//
// Combines the stream starts of an unfailed ramp and a one-cub-failed ramp
// (the paper plots both runs together, ~4050 starts) and reports the latency
// distribution per schedule-load bucket. Expected shape (§5): ~1.8 s minimum
// (1 s block transmission + ~0.8 s scheduling lead and network latency),
// mean < 5 s at 95% load, and outliers beyond 20 s as load approaches 100%.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/client/ramp_experiment.h"
#include "src/client/testbed.h"
#include "src/stats/histogram.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("fig10_startup: stream startup latency vs schedule load",
              "Figure 10 of Bolosky et al., SOSP 1997");

  TigerConfig config;
  std::vector<RampResult::StartPoint> all_starts;

  auto run = [&](bool failed, uint64_t seed) {
    RampOptions options;
    if (args.quick) {
      options.max_streams = 180;
      options.step_interval = Duration::Seconds(20);
      options.measure_window = Duration::Seconds(10);
    }
    if (args.max_streams > 0) {
      options.max_streams = args.max_streams;
    }
    if (failed) {
      options.fail_cub = CubId(7);
      options.probe_cub = CubId(8);
    }
    Testbed testbed(config, seed);
    testbed.AddContent(64, Duration::Seconds(3600));
    RampResult result = RunRampExperiment(testbed, options);
    all_starts.insert(all_starts.end(), result.starts.begin(), result.starts.end());
    std::printf("%s run: %zu starts collected\n", failed ? "failed  " : "unfailed",
                result.starts.size());
  };

  run(/*failed=*/false, args.seed);
  run(/*failed=*/true, args.seed + 1);

  // Bucket by schedule load.
  TextTable table({"load_bucket", "starts", "min_s", "mean_s", "p50_s", "p95_s", "max_s"});
  const double bucket_width = 0.10;
  Histogram overall;
  int outliers_over_20s = 0;
  for (double lo = 0.0; lo < 1.001; lo += bucket_width) {
    Histogram bucket;
    for (const auto& start : all_starts) {
      if (start.schedule_load >= lo && start.schedule_load < lo + bucket_width) {
        bucket.Add(start.latency_seconds);
      }
    }
    if (bucket.empty()) {
      continue;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%2.0f%%-%2.0f%%", lo * 100, (lo + bucket_width) * 100);
    table.Row()
        .Str(label)
        .Int(static_cast<int64_t>(bucket.count()))
        .Double(bucket.min(), 2)
        .Double(bucket.Mean(), 2)
        .Double(bucket.Percentile(50), 2)
        .Double(bucket.Percentile(95), 2)
        .Double(bucket.max(), 2);
  }
  for (const auto& start : all_starts) {
    overall.Add(start.latency_seconds);
    if (start.latency_seconds > 20.0) {
      ++outliers_over_20s;
    }
  }
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }

  std::printf("\ntotal starts: %zu; %s\n", overall.count(), overall.Summary().c_str());
  std::printf("starts over 20 s: %d (paper: a reasonable number of outliers >20 s at very "
              "high loads)\n", outliers_over_20s);
  std::printf("paper: ~1.8 s minimum; mean < 5 s at 95%% load; don't run Tigers above ~90%%\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
