// Event-engine and message-path microbenchmarks.
//
// The discrete-event core is the bottleneck of every Tiger experiment, so its
// throughput gets a machine-readable baseline: this bench emits
// BENCH_sim.json (schema in EXPERIMENTS.md) so CI can archive a number per
// commit and humans can diff runs. Three workloads:
//
//   schedule_fire         pure schedule+dispatch churn (self-rescheduling
//                         timers), the simulator's absolute hot path;
//   schedule_cancel_fire  the deadman pattern — every dispatch cancels and
//                         re-arms a pending timer — which stresses O(1)
//                         cancel and tombstone compaction;
//   message_hop           control-plane ping-pong through the simulated
//                         Network (payload allocation, FIFO clamp, delivery
//                         event per hop);
//   message_hop_lineage   the same hops carrying lineage-tagged viewer-state
//                         records through the wire codec (Lamport merge,
//                         successor restamp, encode/decode) — prices the
//                         audit lineage machinery against message_hop;
//   cub_ring_90pct        end-to-end distributed-schedule system at 90%
//                         load, the workload behind bench/scalability;
//   cub_ring_90pct_profiled  the same system with the self-profiler on
//                         (src/trace/profiler.h). Diffing against
//                         cub_ring_90pct prices the profiler; the measured
//                         span must dispatch exactly the same number of
//                         events (profiling never changes the logical
//                         schedule — checked, not assumed), and
//                         --profile-overhead-max=F turns the slowdown into a
//                         CI gate;
//   cub_ring_90pct_traced the same system with typed tracing on but no
//                         sink — prices trace *emission* alone, which
//                         measures ~25% on this workload (every protocol
//                         event records into per-track rings). Tracing is
//                         opt-in per run, so that cost is not gated; the
//                         entry exists as the honest baseline for:
//   cub_ring_90pct_recorded  tracing plus the flight recorder
//                         (src/obs/flight_recorder.h) — the black-box
//                         configuration an incident-capturing run uses.
//                         Diffed against cub_ring_90pct_traced this prices
//                         the recorder itself (sink call + ring copy +
//                         periodic checkpoints) on top of the trace stream
//                         it consumes. The recorder adds exactly its
//                         checkpoint ticks to the event stream and nothing
//                         else (checked), and --recorder-overhead-max=F
//                         gates its marginal slowdown over the traced run
//                         and the zero-allocation contract.
//
// Every workload runs `warmup + reps` times and reports the best wall time
// (minimum is the stable estimator at millisecond scale). With a
// -DTIGER_COUNT_ALLOCS=ON build it also reports steady-state heap
// allocations per event, which the engine contract says must be zero for the
// timer workloads.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/alloc_counter.h"
#include "src/core/messages.h"
#include "src/core/system.h"
#include "src/net/network.h"
#include "src/net/payload_pool.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

struct WorkloadResult {
  std::string name;
  int reps = 0;
  int warmup_reps = 1;
  uint64_t events = 0;       // Events dispatched per rep.
  double best_wall_s = 0;    // Minimum over reps.
  double events_per_sec = 0;
  uint64_t steady_allocs = 0;  // Minimum allocs over reps (steady state).
  double allocs_per_event = 0;
};

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// Runs `body` warmup+reps times; keeps the best wall time and the minimum
// alloc count (the steady-state figure — first reps pay one-time pool and
// vector growth).
template <typename Body>
WorkloadResult Measure(const char* name, uint64_t events, int reps, Body&& body) {
  WorkloadResult r;
  r.name = name;
  r.reps = reps;
  r.events = events;
  r.best_wall_s = 1e30;
  r.steady_allocs = ~0ull;
  for (int i = 0; i < r.warmup_reps + reps; ++i) {
    const uint64_t allocs_before = AllocCount();
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto end = std::chrono::steady_clock::now();
    if (i < r.warmup_reps) {
      continue;
    }
    r.best_wall_s = std::min(r.best_wall_s, Seconds(end - start));
    r.steady_allocs = std::min(r.steady_allocs, AllocCount() - allocs_before);
  }
  r.events_per_sec = static_cast<double>(r.events) / r.best_wall_s;
  r.allocs_per_event =
      static_cast<double>(r.steady_allocs) / static_cast<double>(r.events);
  return r;
}

// --- workload 1: schedule + fire -------------------------------------------

WorkloadResult ScheduleFire(bool quick) {
  const uint64_t kEvents = quick ? 400'000 : 4'000'000;
  const int kChains = 64;  // Pending-queue depth while running.
  // The simulator persists across reps so the non-warmup reps measure true
  // steady state: slab, heap and callback storage are all at capacity and
  // per-event allocations must be zero.
  Simulator sim;
  uint64_t remaining = 0;
  struct Chain {
    Simulator* sim;
    uint64_t* remaining;
    void Tick() {
      if (*remaining == 0) {
        return;
      }
      --*remaining;
      sim->ScheduleAfter(Duration::Micros(100), [this] { Tick(); });
    }
  };
  std::vector<Chain> chains(kChains, Chain{&sim, &remaining});
  return Measure("schedule_fire", kEvents, quick ? 3 : 5, [&] {
    remaining = kEvents;
    for (auto& c : chains) {
      c.Tick();
    }
    sim.Run();
    TIGER_CHECK(remaining == 0);
  });
}

// --- workload 2: schedule + cancel + fire (deadman re-arm) ------------------

WorkloadResult ScheduleCancelFire(bool quick) {
  const uint64_t kEvents = quick ? 200'000 : 2'000'000;
  Simulator sim;
  uint64_t remaining = 0;
  // The deadman pattern of src/core/cub.cc: each heartbeat cancels the
  // pending timeout and re-arms it far in the future; the timeout itself
  // almost never fires. Stresses O(1) cancel plus tombstone compaction.
  struct Node {
    Simulator* sim;
    uint64_t* remaining;
    TimerId deadman = kInvalidTimer;
    void Beat() {
      if (*remaining == 0) {
        sim->Cancel(deadman);
        return;
      }
      --*remaining;
      sim->Cancel(deadman);
      deadman = sim->ScheduleAfter(Duration::Seconds(10), [] {});
      sim->ScheduleAfter(Duration::Micros(100), [this] { Beat(); });
    }
  };
  std::vector<Node> nodes(32, Node{&sim, &remaining, kInvalidTimer});
  return Measure("schedule_cancel_fire", kEvents, quick ? 3 : 5, [&] {
    remaining = kEvents;
    for (auto& n : nodes) {
      n.Beat();
    }
    sim.Run();
    TIGER_CHECK(remaining == 0);
  });
}

// --- workload 3: control-plane message hops ---------------------------------

class PingPonger : public NetworkEndpoint {
 public:
  void Init(Network* net, NetAddress self, NetAddress peer, uint64_t* remaining) {
    net_ = net;
    self_ = self;
    peer_ = peer;
    remaining_ = remaining;
  }
  void Kick() { SendOne(); }
  void HandleMessage(const MessageEnvelope& envelope) override {
    (void)envelope;
    SendOne();
  }

 private:
  void SendOne() {
    if (*remaining_ == 0) {
      return;
    }
    --*remaining_;
    auto msg = MakePooledMessage<HeartbeatMsg>();
    msg->from = CubId(static_cast<int32_t>(self_));
    net_->Send(self_, peer_, HeartbeatMsg::WireBytes(), std::move(msg));
  }

  Network* net_ = nullptr;
  NetAddress self_ = kInvalidAddress;
  NetAddress peer_ = kInvalidAddress;
  uint64_t* remaining_ = nullptr;
};

WorkloadResult MessageHop(bool quick, uint64_t seed) {
  const uint64_t kHops = quick ? 100'000 : 1'000'000;
  const int kPairs = 8;
  Simulator sim;
  Network net(&sim, NetworkConfig{}, Rng(seed));
  uint64_t remaining = 0;
  std::vector<PingPonger> nodes(2 * kPairs);
  std::vector<NetAddress> addrs;
  for (auto& n : nodes) {
    addrs.push_back(net.Attach(&n, "bench", Megabits(1000)));
  }
  for (int p = 0; p < kPairs; ++p) {
    nodes[2 * p].Init(&net, addrs[2 * p], addrs[2 * p + 1], &remaining);
    nodes[2 * p + 1].Init(&net, addrs[2 * p + 1], addrs[2 * p], &remaining);
  }
  return Measure("message_hop", kHops, quick ? 3 : 5, [&] {
    remaining = kHops;
    for (int p = 0; p < kPairs; ++p) {
      nodes[2 * p].Kick();
    }
    sim.Run();
    TIGER_CHECK(remaining == 0);
  });
}

// --- workload 3b: message hops with lineage tagging -------------------------
//
// The same ping-pong, but each hop carries a full lineage-tagged viewer-state
// record through the real wire path: merge the Lamport clock on receive,
// advance the successor (sequence, position, due, hop count), restamp, encode
// into a batch message. Diffing against message_hop prices the audit lineage
// machinery; the acceptance bar is zero steady-state allocations per hop.

class LineagePingPonger : public NetworkEndpoint {
 public:
  void Init(Network* net, NetAddress self, NetAddress peer, uint64_t* remaining) {
    net_ = net;
    self_ = self;
    peer_ = peer;
    remaining_ = remaining;
    record_.viewer = ViewerId(static_cast<uint32_t>(self));
    record_.instance = PlayInstanceId(self);
    record_.slot = SlotId(static_cast<uint32_t>(self));
    record_.due = TimePoint::Zero() + Duration::Seconds(5);
    record_.lineage.origin_cub = static_cast<uint32_t>(self);
    record_.lineage.epoch = 1;
    record_.lineage.MarkTagged();
    scratch_.reserve(ViewerStateBatchMsg::kReserveRecords);
  }
  void Kick() { SendOne(); }
  void HandleMessage(const MessageEnvelope& envelope) override {
    const auto& batch = static_cast<const ViewerStateBatchMsg&>(*envelope.payload);
    batch.DecodeInto(&scratch_);
    for (const ViewerStateRecord& record : scratch_) {
      // Cub::MergeLineageClock's merge rule.
      if (record.lineage.lamport > lamport_) {
        lamport_ = record.lineage.lamport;
      }
      record_ = record;
    }
    SendOne();
  }

 private:
  void SendOne() {
    if (*remaining_ == 0) {
      return;
    }
    --*remaining_;
    // Successor + restamp, as in Cub::MaybeForwardEntry.
    record_.sequence++;
    record_.position++;
    record_.due += Duration::Seconds(1);
    record_.lineage.hop_count++;
    record_.lineage.lamport = ++lamport_;
    auto msg = MakePooledMessage<ViewerStateBatchMsg>();
    msg->Add(record_);
    net_->Send(self_, peer_, kViewerStateWireBytes + 16, std::move(msg));
  }

  Network* net_ = nullptr;
  NetAddress self_ = kInvalidAddress;
  NetAddress peer_ = kInvalidAddress;
  uint64_t* remaining_ = nullptr;
  ViewerStateRecord record_;
  std::vector<ViewerStateRecord> scratch_;
  uint64_t lamport_ = 0;
};

WorkloadResult MessageHopLineage(bool quick, uint64_t seed) {
  const uint64_t kHops = quick ? 100'000 : 1'000'000;
  const int kPairs = 8;
  Simulator sim;
  Network net(&sim, NetworkConfig{}, Rng(seed));
  uint64_t remaining = 0;
  std::vector<LineagePingPonger> nodes(2 * kPairs);
  std::vector<NetAddress> addrs;
  for (auto& n : nodes) {
    addrs.push_back(net.Attach(&n, "bench", Megabits(1000)));
  }
  for (int p = 0; p < kPairs; ++p) {
    nodes[2 * p].Init(&net, addrs[2 * p], addrs[2 * p + 1], &remaining);
    nodes[2 * p + 1].Init(&net, addrs[2 * p + 1], addrs[2 * p], &remaining);
  }
  return Measure("message_hop_lineage", kHops, quick ? 3 : 5, [&] {
    remaining = kHops;
    for (int p = 0; p < kPairs; ++p) {
      nodes[2 * p].Kick();
    }
    sim.Run();
    TIGER_CHECK(remaining == 0);
  });
}

// --- workload 4: end-to-end 90%-load cub ring -------------------------------

struct CubRingOutcome {
  WorkloadResult result;
  // Events over the whole measured span (all reps). Deterministic for a
  // fixed seed, unlike result.events which belongs to the best-rate rep.
  uint64_t span_events = 0;
  // Simulated seconds in the measured span (reps x window), for reasoning
  // about timer-driven event-count deltas between variants.
  int64_t span_sim_s = 0;
  // Per-round events/sec, in round order. The overhead gates consume these
  // pairwise (same index = windows that ran within milliseconds of each
  // other), not the best-window figure above.
  std::vector<double> window_rates;
};

// Marginal-slowdown estimators for the overhead gates, built on paired
// rounds: round i of `variant` ran within milliseconds of round i of `base`
// on the same live machine, so each per-round rate ratio cancels slow host
// drift and only per-window jitter remains. Positive = variant is slower.
struct PairedOverhead {
  // Median per-round ratio: the honest central estimate, printed for humans
  // and recorded in baselines. On a noisy shared runner it still swings a
  // few points when one side draws most of the jitter.
  double median = 0;
  // Second-smallest per-round ratio: what the CI gate consumes. Jitter is
  // additive — it slows windows, never speeds them — so a single clean round
  // is an upper-bound-free look at the true cost; allowing one discarded
  // round covers the case where the BASE window of the cleanest round was
  // itself descheduled. A run fails only if all rounds but one exceed the
  // gate, which machine noise essentially cannot do and a genuine cost
  // regression (an allocation, an O(n) scan on the record path) always does.
  double gated = 0;
};

PairedOverhead MeasureOverhead(const CubRingOutcome& base, const CubRingOutcome& variant) {
  TIGER_CHECK(base.window_rates.size() == variant.window_rates.size() &&
              base.window_rates.size() >= 2);
  std::vector<double> overheads;
  overheads.reserve(base.window_rates.size());
  for (size_t i = 0; i < base.window_rates.size(); ++i) {
    overheads.push_back(1.0 - variant.window_rates[i] / base.window_rates[i]);
  }
  std::sort(overheads.begin(), overheads.end());
  const size_t n = overheads.size();
  PairedOverhead out;
  out.median = n % 2 == 1 ? overheads[n / 2]
                          : 0.5 * (overheads[n / 2 - 1] + overheads[n / 2]);
  out.gated = overheads[1];
  return out;
}

enum class CubRingMode { kPlain, kProfiled, kTraced, kRecorded };

// One persistent 90%-load system per variant. Constructing a fresh system
// per rep (the original shape of this workload) charged bootstrap and
// pool-fill costs to every rep, which is exactly the allocation noise
// "steady state" is defined to exclude: the protocol contract is zero heap
// allocations per event once the ring is warm, and that is what a window on
// a live system measures.
struct CubRingVariant {
  CubRingVariant(CubRingMode m, uint64_t seed) : mode(m) {
    TigerConfig config;
    config.shape.num_cubs = 14;
    config.simulate_data_plane = false;
    dist = std::make_unique<TigerSystem>(config, seed);
    sink = std::make_unique<SinkEndpoint>();
    NetAddress sink_addr =
        dist->net().Attach(sink.get(), "sink", config.client_nic_bps);
    if (mode == CubRingMode::kProfiled) {
      dist->EnableProfiling();
    } else if (mode == CubRingMode::kTraced) {
      dist->EnableTracing();
    } else if (mode == CubRingMode::kRecorded) {
      // Implies EnableTracing(): the recorder consumes the typed trace stream
      // through the sink slot. Against the traced variant this isolates the
      // recorder's own cost — sink dispatch, packed ring store, 1/s
      // checkpoint digests — from the trace emission both share.
      dist->EnableFlightRecorder();
    }
    const int streams =
        static_cast<int>(static_cast<double>(config.MaxStreams()) * 0.9);
    // Long enough that no stream hits end-of-file inside the measured horizon
    // (EOF would drain the ring and change what "steady" means).
    FileId file =
        dist->AddFile("content", config.max_stream_bps,
                      config.block_play_time * (config.shape.TotalDisks() + 600))
            .value();
    int made = dist->BootstrapStreams(streams, sink_addr, file, config.max_stream_bps);
    TIGER_CHECK(made == streams);
    dist->Start();
    out.result.name = mode == CubRingMode::kProfiled   ? "cub_ring_90pct_profiled"
                      : mode == CubRingMode::kTraced   ? "cub_ring_90pct_traced"
                      : mode == CubRingMode::kRecorded ? "cub_ring_90pct_recorded"
                                                       : "cub_ring_90pct";
    out.result.warmup_reps = 1;
    out.result.best_wall_s = 1e30;
    out.result.steady_allocs = ~0ull;
  }

  // Warmup window: pools fill, meters reserve, the view reaches steady
  // occupancy, eviction ticks begin recycling. dist->RunUntil (not
  // sim().RunUntil) so the profiled variant's serial profiler is installed
  // around the loop; for the unprofiled runs the wrapper is a plain forward.
  void Warmup(Duration warmup) {
    cursor = TimePoint::Zero() + warmup;
    dist->RunUntil(cursor);
    span_start_events = dist->processed_events();
  }

  void Window(Duration window) {
    WorkloadResult& r = out.result;
    const uint64_t events_before = dist->processed_events();
    const uint64_t allocs_before = AllocCount();
    const auto start = std::chrono::steady_clock::now();
    cursor = cursor + window;
    dist->RunUntil(cursor);
    const auto end = std::chrono::steady_clock::now();
    const uint64_t events = dist->processed_events() - events_before;
    const uint64_t allocs = AllocCount() - allocs_before;
    const double wall = Seconds(end - start);
    const double rate = static_cast<double>(events) / wall;
    out.window_rates.push_back(rate);
    ++r.reps;
    if (rate > best_rate) {
      best_rate = rate;
      r.events = events;
      r.best_wall_s = wall;
      r.events_per_sec = rate;
    }
    if (allocs < r.steady_allocs) {
      r.steady_allocs = allocs;
      r.allocs_per_event = static_cast<double>(allocs) / static_cast<double>(events);
    }
  }

  CubRingOutcome Finish(const std::string& profile_prefix) {
    out.span_events = dist->processed_events() - span_start_events;
    if (mode == CubRingMode::kRecorded) {
      // The overhead gate would be vacuous if the recorder never saw the
      // stream.
      TIGER_CHECK(dist->flight_recorder() != nullptr &&
                  dist->flight_recorder()->recorded() > 0)
          << "recorded variant ran without the flight recorder attached";
    }
    if (mode == CubRingMode::kProfiled && !profile_prefix.empty()) {
      const std::string path = profile_prefix + out.result.name + ".profile.json";
      if (dist->WriteProfile(path)) {
        std::printf("wrote %s\n", path.c_str());
      }
    }
    return out;
  }

  CubRingMode mode;
  std::unique_ptr<TigerSystem> dist;
  std::unique_ptr<SinkEndpoint> sink;
  TimePoint cursor = TimePoint::Zero();
  uint64_t span_start_events = 0;
  double best_rate = 0;
  CubRingOutcome out;
};

// Runs all four cub-ring variants and returns their outcomes in
// {plain, profiled, traced, recorded} order.
//
// The variants exist to be DIFFED — the profiler and flight-recorder gates
// compare events/sec across them — so they are measured in interleaved
// windows over four live systems rather than run to completion one after
// another. Sequential runs let slow host drift (thermal, noisy neighbors)
// land entirely on whichever variant ran last and the marginal-overhead
// figures swing by more than the gates; adjacent interleaved windows see the
// same machine, and the best-window estimator then cancels the drift.
std::vector<CubRingOutcome> CubRingSuite(bool quick, uint64_t seed,
                                         const std::string& profile_prefix) {
  // Warmup must outlast every settling horizon in the system, the longest of
  // which is the seen-instance retention window (~20s: view retention plus
  // two deadman timeouts plus two block times) — only after entries have aged
  // out and been re-admitted is the allocation steady state reachable.
  const Duration kWarmup = Duration::Seconds(quick ? 30 : 40);
  const Duration kWindow = Duration::Seconds(quick ? 4 : 12);
  // Enough rounds that the median paired ratio settles: single windows are
  // ~5ms in quick mode and host jitter at that scale is a few percent, so
  // the gates need the median of many pairs, not a lucky best-of-few.
  const int kReps = quick ? 11 : 7;
  const CubRingMode kModes[] = {CubRingMode::kPlain, CubRingMode::kProfiled,
                                CubRingMode::kTraced, CubRingMode::kRecorded};
  std::vector<CubRingVariant> variants;
  variants.reserve(4);
  for (CubRingMode mode : kModes) {
    variants.emplace_back(mode, seed);
    variants.back().Warmup(kWarmup);
  }
  for (int rep = 0; rep < kReps; ++rep) {
    // Rotate the within-round order: with a fixed order each variant's
    // windows recur at the round period, and any periodic host interference
    // near that period aliases onto whichever variant it phase-locks with.
    for (size_t i = 0; i < variants.size(); ++i) {
      variants[(static_cast<size_t>(rep) + i) % variants.size()].Window(kWindow);
    }
  }
  std::vector<CubRingOutcome> outcomes;
  outcomes.reserve(4);
  for (CubRingVariant& v : variants) {
    v.out.span_sim_s = static_cast<int64_t>(kReps) * (kWindow / Duration::Seconds(1));
    outcomes.push_back(v.Finish(profile_prefix));
  }
  return outcomes;
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("sim_microbench: event-engine + message-path throughput",
              "perf baseline (no paper figure); BENCH_sim.json");
  if (!AllocCountingEnabled()) {
    std::printf("note: built without -DTIGER_COUNT_ALLOCS, allocs/event reads 0\n");
  }

  std::vector<WorkloadResult> results;
  results.push_back(ScheduleFire(args.quick));
  results.push_back(ScheduleCancelFire(args.quick));
  results.push_back(MessageHop(args.quick, args.seed));
  results.push_back(MessageHopLineage(args.quick, args.seed));
  const std::vector<CubRingOutcome> ring =
      CubRingSuite(args.quick, args.seed, args.profile_prefix);
  const CubRingOutcome& plain = ring[0];
  const CubRingOutcome& profiled = ring[1];
  const CubRingOutcome& traced = ring[2];
  const CubRingOutcome& recorded = ring[3];
  results.push_back(plain.result);
  results.push_back(profiled.result);
  results.push_back(traced.result);
  results.push_back(recorded.result);
  // The profiler's contract: it observes the run, it never steers it. Event
  // counts over the same simulated span must match exactly.
  TIGER_CHECK(plain.span_events == profiled.span_events)
      << "profiling changed the logical schedule: " << plain.span_events << " vs "
      << profiled.span_events << " events";
  const PairedOverhead overhead = MeasureOverhead(plain, profiled);
  std::printf("profiler overhead on cub_ring_90pct: median %.2f%%, gated %.2f%%%s\n",
              overhead.median * 100, overhead.gated * 100,
              args.profile_overhead_max > 0 ? " (gated)" : "");
  if (args.profile_overhead_max > 0 && overhead.gated > args.profile_overhead_max) {
    std::fprintf(stderr,
                 "sim_microbench: profiler overhead %.2f%% exceeds gate %.2f%%\n",
                 overhead.gated * 100, args.profile_overhead_max * 100);
    return 1;
  }
  // Tracing alone must not perturb the schedule either: recording into the
  // per-track rings is pure observation.
  TIGER_CHECK(plain.span_events == traced.span_events)
      << "tracing changed the logical schedule: " << plain.span_events << " vs "
      << traced.span_events << " events";
  // The recorder's contract is almost the profiler's, minus its checkpoint
  // timer: the only events it may add to the measured span are the 1/s
  // checkpoint ticks (self-rearming sim timer, one event per cadence). The
  // protocol schedule itself must be untouched, so the surplus is bounded by
  // the tick count with one slot of slack for ticks landing on a window edge.
  const int64_t surplus = static_cast<int64_t>(recorded.span_events) -
                          static_cast<int64_t>(plain.span_events);
  TIGER_CHECK(surplus >= 0 && surplus <= recorded.span_sim_s + 1)
      << "flight recorder changed the logical schedule: " << plain.span_events
      << " -> " << recorded.span_events << " events over " << recorded.span_sim_s
      << " sim-seconds";
  // Trace emission is an opt-in per-run cost (~25% on this workload, priced
  // by the traced entry but not gated). The gated figure is the recorder's
  // marginal cost over the traced run — what turning the black box on adds
  // to a run that is already tracing.
  const PairedOverhead trace_overhead = MeasureOverhead(plain, traced);
  std::printf("trace-emission overhead on cub_ring_90pct: median %.2f%% (not gated)\n",
              trace_overhead.median * 100);
  const PairedOverhead rec_overhead = MeasureOverhead(traced, recorded);
  std::printf("flight-recorder overhead on cub_ring_90pct_traced: median %.2f%%, gated %.2f%%%s\n",
              rec_overhead.median * 100, rec_overhead.gated * 100,
              args.recorder_overhead_max > 0 ? " (gated)" : "");
  if (args.recorder_overhead_max > 0) {
    if (rec_overhead.gated > args.recorder_overhead_max) {
      std::fprintf(stderr,
                   "sim_microbench: flight-recorder overhead %.2f%% exceeds gate %.2f%%\n",
                   rec_overhead.gated * 100, args.recorder_overhead_max * 100);
      return 1;
    }
    // Zero-allocation contract: with the recorder on, the steady-state alloc
    // count per event must stay at zero (only checkable in a
    // -DTIGER_COUNT_ALLOCS build; elsewhere the counter reads 0).
    if (AllocCountingEnabled() && recorded.result.steady_allocs != 0) {
      std::fprintf(stderr,
                   "sim_microbench: flight recorder allocated in steady state "
                   "(%llu allocs over the best window)\n",
                   static_cast<unsigned long long>(recorded.result.steady_allocs));
      return 1;
    }
  }

  TextTable table({"workload", "events", "best_wall_s", "events/sec", "allocs/event"});
  for (const WorkloadResult& r : results) {
    table.Row()
        .Str(r.name)
        .Int(static_cast<int64_t>(r.events))
        .Double(r.best_wall_s, 4)
        .Double(r.events_per_sec, 0)
        .Double(r.allocs_per_event, 4);
  }
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }

  const std::string json_path =
      args.json_path.empty() ? "BENCH_sim.json" : args.json_path;
  JsonWriter json;
  json.BeginObject()
      .Kv("bench", "sim_microbench")
      .Kv("schema_version", 1)
      .Kv("seed", args.seed)
      .Kv("quick", args.quick)
      .Kv("alloc_counting_enabled", AllocCountingEnabled());
  json.Key("results").BeginArray();
  for (const WorkloadResult& r : results) {
    json.BeginObject()
        .Kv("name", r.name)
        .Kv("reps", r.reps)
        .Kv("warmup_reps", r.warmup_reps)
        .Kv("events", r.events)
        .Kv("best_wall_s", r.best_wall_s)
        .Kv("events_per_sec", r.events_per_sec)
        .Kv("steady_allocs", r.steady_allocs)
        .Kv("allocs_per_event", r.allocs_per_event)
        .EndObject();
  }
  json.EndArray().EndObject();
  if (json.WriteFile(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
