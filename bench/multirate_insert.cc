// Two-phase insertion into the distributed network schedule (§4.2).
//
// Drives a full multiple-bitrate Tiger with a churning mixed-bitrate
// workload and reports the behaviour of the reserve/commit protocol:
// commits, aborts (negative confirmation or timeout), local admission
// rejects, and the invariant that no cub's NIC is ever oversubscribed even
// though every admission decision is made against a stale local view.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/client/viewer.h"
#include "src/core/multirate_system.h"
#include "src/stats/histogram.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("multirate_insert: two-phase reserve/commit insertion",
              "§4.2 of Bolosky et al., SOSP 1997 (multiple-bitrate Tiger)");

  TigerConfig config;
  config.shape = SystemShape{14, 4, 4};
  config.block_bytes = 1 << 20;  // Allows up to 8 Mbit/s files.
  config.max_stream_bps = Megabits(8);
  // Keep the NIC the binding resource so the network schedule is exercised.
  config.cub_nic_bps = Megabits(60);

  MultirateSystem system(config, args.seed);
  std::vector<FileId> files;
  const std::vector<int64_t> bitrates = {Megabits(1), Megabits(2), Megabits(4), Megabits(8)};
  const int file_count = args.quick ? 16 : 64;
  for (int i = 0; i < file_count; ++i) {
    files.push_back(system
                        .AddFile("f" + std::to_string(i),
                                 bitrates[static_cast<size_t>(i) % bitrates.size()],
                                 Duration::Seconds(args.quick ? 40 : 120))
                        .value());
  }
  system.Start();

  // Looping viewers churn the schedule continuously.
  Rng rng(args.seed ^ 0xabcdef);
  std::vector<std::unique_ptr<ViewerClient>> viewers;
  const int viewer_count = args.quick ? 80 : 320;
  for (int i = 0; i < viewer_count; ++i) {
    auto viewer =
        std::make_unique<ViewerClient>(&system.sim(), ViewerId(static_cast<uint32_t>(i + 1)),
                                       &system.config(), &system.catalog(), &system.net());
    viewer->SetAddressBook(&system.addresses());
    ViewerClient* raw = viewer.get();
    viewers.push_back(std::move(viewer));
    Duration stagger = Duration::Micros(rng.UniformInt(0, 20000000));
    system.sim().ScheduleAfter(stagger, [raw, &files, &rng] {
      raw->StartLooping([&files, &rng] { return files[rng.PickIndex(files.size())]; });
    });
  }
  const Duration run = args.quick ? Duration::Seconds(60) : Duration::Seconds(300);
  system.sim().RunFor(run);

  MultirateCub::Counters totals = system.TotalCubCounters();
  Histogram startup;
  int64_t lost = 0;
  int64_t blocks = 0;
  for (const auto& viewer : viewers) {
    for (double s : viewer->startup_latency().samples()) {
      startup.Add(s);
    }
    lost += viewer->stats().lost_blocks;
    blocks += viewer->stats().blocks_complete;
  }
  int64_t peak_nic = 0;
  int64_t oversubscriptions = 0;
  for (int c = 0; c < system.cub_count(); ++c) {
    NetAddress addr = system.cub(CubId(static_cast<uint32_t>(c))).address();
    peak_nic = std::max(peak_nic, system.net().PeakDataRate(addr));
    oversubscriptions += system.net().OversubscriptionEvents(addr);
  }

  TextTable table({"metric", "value"});
  table.Row().Str("insertions committed").Int(totals.inserts_committed);
  table.Row().Str("insertions aborted (reserve phase)").Int(totals.inserts_aborted);
  table.Row().Str("reserve requests").Int(totals.reserve_requests);
  table.Row().Str("reserve rejections by successor").Int(totals.reserve_rejections);
  table.Row().Str("local admission rejects (retried)").Int(totals.admission_rejects_local);
  table.Row().Str("blocks delivered").Int(blocks);
  table.Row().Str("client-lost blocks").Int(lost);
  table.Row().Str("startup latency (s)").Str(startup.empty() ? "n/a" : startup.Summary());
  table.Row().Str("peak NIC commitment (Mbit/s)").Double(
      static_cast<double>(peak_nic) / 1e6, 1);
  table.Row().Str("NIC capacity (Mbit/s)").Double(
      static_cast<double>(config.cub_nic_bps) / 1e6, 1);
  table.Row().Str("NIC oversubscription events").Int(oversubscriptions);
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }
  std::printf("\npaper: tentative insertion overlaps the reserve round trip with the first\n"
              "disk read, so \"there will almost always be time for the communication with\n"
              "the succeeding cub without having to increase the scheduling lead\"; aborted\n"
              "insertions retry from the head of the queue. The NIC must never be\n"
              "oversubscribed despite admission running on stale views.\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
