// Measured large-shape scale sweep (paper §3.3).
//
// The paper's central scalability claim is that distributed schedule
// management keeps per-cub control cost flat out to a hypothetical 1000-cub,
// ~40k-stream Tiger. EXPERIMENTS.md E6 used to reproduce that claim
// analytically; this harness replaces the arithmetic with measured runs of
// the real system — cubs, forwarding, deadman, audit hooks, the whole
// control plane — at 100/250/500/1000 cubs, and emits BENCH_scale.json so
// "millions of users" is a number the repo produces faster than real time.
//
// Shape x load grid. Each shape runs at low and high occupancy; occupancy
// sets the concurrent stream count, and concurrent streams stand in for a
// modeled subscriber population via a peak-activity fraction (at any instant
// only a few percent of a video service's subscribers hold an active
// stream). The grid spans ~10^4 modeled viewers (100 cubs, 10% load) to
// ~10^6 (1000 cubs, 90% load).
//
// Reported per point:
//   events / events_per_sec   simulator events in the measured window, and
//                             the wall-clock dispatch rate (best rep);
//   allocs_per_event          steady-state heap allocations per event
//                             (minimum over reps; 0 is the contract with a
//                             -DTIGER_COUNT_ALLOCS build);
//   sim_wall_ratio            simulated seconds per wall second (best rep;
//                             > 1 means faster than real time);
//   control_bps_per_cub_*     mean/max per-cub control-plane send rate over
//                             the measured span — the paper's "schedule
//                             management cost stays flat" number.
//
// Simulation-derived fields (events, streams, control bytes) are
// seed-deterministic; wall-derived fields (events_per_sec, sim_wall_ratio)
// vary with the host. The data plane is off: block I/O would dominate the
// event budget without touching the schedule-management path under test.
//
// --threads=N additionally runs every point on the sharded parallel engine
// (DESIGN.md §6h) with 1 worker thread and with N, and reports
// speedup_vs_1thread — measured, not assumed, so a single-CPU host honestly
// reports ~1.0x. Simulation-derived fields are identical between the two
// runs by the engine's determinism contract. The shard count defaults to
// sim_shards=0 host auto-tune (TigerSystem logs the resolution); pass
// --shards=N to pin it — CI does, because the shard count fixes the logical
// schedule and thus the bench_compare entry names.
//
// --profile-prefix=P enables the self-profiler on every measured system and
// writes <P><name>.profile.json (tiger-profile-v1; read with
// tools/tigerstat). Profiling never changes the logical schedule, so the
// determinism cross-checks hold with it on.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/alloc_counter.h"
#include "src/core/system.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

// Fraction of a subscriber population holding an active stream at peak.
// 90% load on the 1000-cub shape (~39k streams) models ~10^6 subscribers.
constexpr double kPeakActivity = 0.04;

struct SweepPoint {
  int cubs = 0;
  double load = 0;
};

struct SweepResult {
  std::string name;  // Stable bench_compare key, e.g. "cubs100_load90_s8t4".
  int cubs = 0;
  int disks_per_cub = 0;
  int shards = 1;
  int threads = 1;
  double load = 0;
  int64_t slot_count = 0;
  int streams = 0;
  int64_t modeled_viewers = 0;
  double warmup_sim_s = 0;
  double window_sim_s = 0;
  int reps = 0;
  uint64_t events = 0;       // Events in the best-rate window.
  double best_wall_s = 0;
  double events_per_sec = 0;
  uint64_t steady_allocs = 0;  // Minimum over reps.
  double allocs_per_event = 0;
  double sim_wall_ratio = 0;
  double control_bps_per_cub_mean = 0;
  double control_bps_per_cub_max = 0;
  // Wall-clock ratio vs the same shard count on 1 thread (sharded runs; 0
  // when not measured). Simulation-derived fields don't move with threads.
  double speedup_vs_1thread = 0;
};

std::string PointName(const SweepPoint& point, int shards, int threads) {
  char buf[64];
  if (shards > 1) {
    std::snprintf(buf, sizeof(buf), "cubs%d_load%d_s%dt%d", point.cubs,
                  static_cast<int>(point.load * 100 + 0.5), shards, threads);
  } else {
    std::snprintf(buf, sizeof(buf), "cubs%d_load%d", point.cubs,
                  static_cast<int>(point.load * 100 + 0.5));
  }
  return buf;
}

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

SweepResult RunPoint(const SweepPoint& point, bool quick, uint64_t seed, int shards,
                     int threads, const std::string& profile_prefix) {
  // Warmup must outlast the longest settling horizon in the protocol (the
  // ~20s seen-instance retention window); see bench/sim_microbench.cc.
  const Duration kWarmup = Duration::Seconds(30);
  const Duration kWindow = Duration::Seconds(quick ? 4 : 10);
  const int kReps = quick ? 2 : 3;

  TigerConfig config;
  config.shape.num_cubs = point.cubs;
  config.simulate_data_plane = false;
  config.sim_shards = shards;  // 0 = host auto-tune, resolved (and logged) by the ctor.
  config.sim_threads = threads;
  TigerSystem dist(config, seed);
  SinkEndpoint sink;
  NetAddress sink_addr = dist.net().Attach(&sink, "sink", config.client_nic_bps);
  if (!profile_prefix.empty()) {
    dist.EnableProfiling();
  }

  SweepResult r;
  // Read the resolved shard count back from the system: with --shards=0 the
  // bench_compare key must name what actually ran.
  r.name = PointName(point, dist.config().sim_shards, dist.config().sim_threads);
  r.cubs = point.cubs;
  r.disks_per_cub = config.shape.disks_per_cub;
  r.shards = dist.config().sim_shards;
  r.threads = dist.config().sim_threads;
  r.load = point.load;
  r.slot_count = config.MaxStreams();
  r.streams = static_cast<int>(static_cast<double>(config.MaxStreams()) * point.load);
  r.modeled_viewers = static_cast<int64_t>(static_cast<double>(r.streams) / kPeakActivity);
  r.warmup_sim_s = kWarmup.seconds();
  r.window_sim_s = kWindow.seconds();
  r.reps = kReps;
  r.best_wall_s = 1e30;
  r.steady_allocs = ~0ull;

  // Long enough that no stream reaches end-of-file inside the horizon.
  FileId file = dist.AddFile("content", config.max_stream_bps,
                             config.block_play_time * (config.shape.TotalDisks() + 600))
                    .value();
  int made = dist.BootstrapStreams(r.streams, sink_addr, file, config.max_stream_bps);
  TIGER_CHECK(made == r.streams);
  dist.Start();

  TimePoint cursor = TimePoint::Zero() + kWarmup;
  dist.RunUntil(cursor);
  const TimePoint measured_from = cursor;
  double best_rate = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const uint64_t events_before = dist.processed_events();
    const uint64_t allocs_before = AllocCount();
    const auto start = std::chrono::steady_clock::now();
    cursor = cursor + kWindow;
    dist.RunUntil(cursor);
    const auto end = std::chrono::steady_clock::now();
    const uint64_t events = dist.processed_events() - events_before;
    const uint64_t allocs = AllocCount() - allocs_before;
    const double wall = Seconds(end - start);
    const double rate = static_cast<double>(events) / wall;
    if (rate > best_rate) {
      best_rate = rate;
      r.events = events;
      r.best_wall_s = wall;
      r.events_per_sec = rate;
      r.sim_wall_ratio = kWindow.seconds() / wall;
    }
    if (allocs < r.steady_allocs) {
      r.steady_allocs = allocs;
      r.allocs_per_event = static_cast<double>(allocs) / static_cast<double>(events);
    }
  }

  // Per-cub control cost over the whole measured span (simulation-derived,
  // so seed-deterministic).
  double sum = 0;
  double max = 0;
  for (int c = 0; c < point.cubs; ++c) {
    const double bps = dist.CubControlTrafficBps(CubId(c), measured_from, cursor);
    sum += bps;
    max = std::max(max, bps);
  }
  r.control_bps_per_cub_mean = sum / static_cast<double>(point.cubs);
  r.control_bps_per_cub_max = max;
  if (!profile_prefix.empty()) {
    const std::string path = profile_prefix + r.name + ".profile.json";
    if (dist.WriteProfile(path)) {
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "scale_sweep: cannot write %s\n", path.c_str());
    }
  }
  return r;
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("scale_sweep: measured 100..1000-cub control-plane scaling",
              "paper §3.3 scalability claim; BENCH_scale.json");
  if (!AllocCountingEnabled()) {
    std::printf("note: built without -DTIGER_COUNT_ALLOCS, allocs/event reads 0\n");
  }

  std::vector<SweepPoint> points;
  if (args.quick) {
    points = {{100, 0.9}, {250, 0.9}};
  } else {
    points = {{100, 0.1}, {100, 0.9}, {250, 0.9}, {500, 0.9}, {1000, 0.1}, {1000, 0.9}};
  }

  // Shard count for sharded runs. --shards pins it (CI does: the shard count
  // fixes the logical schedule and thus the bench_compare entry names);
  // unset, --threads runs hand sim_shards=0 to TigerSystem, which auto-tunes
  // for the host (min(hardware threads, cubs/12), logged to stderr). The
  // 1-thread and N-thread runs of a point resolve identically on one host,
  // keeping the determinism cross-check meaningful.
  const int shard_spec = args.shards >= 0 ? args.shards : (args.threads > 1 ? 0 : 1);
  std::vector<SweepResult> results;
  for (const SweepPoint& point : points) {
    if (args.threads > 1) {
      std::printf("running %d cubs at %.0f%% load (shards=%s; 1 then %d threads)...\n",
                  point.cubs, point.load * 100,
                  shard_spec == 0 ? "auto" : std::to_string(shard_spec).c_str(),
                  args.threads);
      std::fflush(stdout);
      SweepResult base =
          RunPoint(point, args.quick, args.seed, shard_spec, 1, args.profile_prefix);
      if (base.shards == 1) {
        // Auto-tune picked the serial engine (single-CPU host or a shape too
        // small to shard); a second run with more threads would be the same
        // run under the same name.
        std::printf("auto-tuned to 1 shard (serial); skipping %d-thread rerun\n",
                    args.threads);
        results.push_back(base);
        continue;
      }
      SweepResult multi = RunPoint(point, args.quick, args.seed, base.shards,
                                   args.threads, args.profile_prefix);
      multi.speedup_vs_1thread =
          multi.best_wall_s > 0 ? base.best_wall_s / multi.best_wall_s : 0;
      TIGER_CHECK(base.events == multi.events)
          << "sharded engine nondeterministic across thread counts";
      results.push_back(base);
      results.push_back(multi);
    } else {
      std::printf("running %d cubs at %.0f%% load...\n", point.cubs, point.load * 100);
      std::fflush(stdout);
      results.push_back(
          RunPoint(point, args.quick, args.seed, shard_spec, 1, args.profile_prefix));
    }
  }

  TextTable table({"cubs", "load", "shards", "threads", "streams", "viewers",
                   "events/sec", "sim/wall", "speedup", "allocs/event", "ctl_bps/cub"});
  for (const SweepResult& r : results) {
    table.Row()
        .Str(std::to_string(r.cubs))
        .Double(r.load, 2)
        .Int(r.shards)
        .Int(r.threads)
        .Int(r.streams)
        .Int(r.modeled_viewers)
        .Double(r.events_per_sec, 0)
        .Double(r.sim_wall_ratio, 1)
        .Double(r.speedup_vs_1thread, 2)
        .Double(r.allocs_per_event, 4)
        .Double(r.control_bps_per_cub_mean, 0);
  }
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }

  const std::string json_path =
      args.json_path.empty() ? "BENCH_scale.json" : args.json_path;
  JsonWriter json;
  json.BeginObject()
      .Kv("bench", "scale_sweep")
      .Kv("schema_version", 1)
      .Kv("seed", args.seed)
      .Kv("quick", args.quick)
      .Kv("alloc_counting_enabled", AllocCountingEnabled())
      .Kv("threads", args.threads)
      .Kv("peak_activity_fraction", kPeakActivity);
  json.Key("results").BeginArray();
  for (const SweepResult& r : results) {
    json.BeginObject()
        .Kv("name", r.name)
        .Kv("cubs", r.cubs)
        .Kv("disks_per_cub", r.disks_per_cub)
        .Kv("shards", r.shards)
        .Kv("threads", r.threads)
        .Kv("speedup_vs_1thread", r.speedup_vs_1thread)
        .Kv("load", r.load)
        .Kv("slot_count", r.slot_count)
        .Kv("streams", r.streams)
        .Kv("modeled_viewers", r.modeled_viewers)
        .Kv("warmup_sim_s", r.warmup_sim_s)
        .Kv("window_sim_s", r.window_sim_s)
        .Kv("reps", r.reps)
        .Kv("events", r.events)
        .Kv("best_wall_s", r.best_wall_s)
        .Kv("events_per_sec", r.events_per_sec)
        .Kv("steady_allocs", r.steady_allocs)
        .Kv("allocs_per_event", r.allocs_per_event);
    if (r.threads > 1) {
      // Multi-thread allocation counts are timing-dependent — worker pool and
      // cross-shard queue growth varies with scheduling even though the
      // logical execution is deterministic — so threaded entries carry an
      // absolute slack for bench_compare's otherwise strict alloc gate. 0.002
      // allocs/event is ~10x the observed run-to-run jitter and still far
      // below any real "someone added a per-event allocation" regression.
      json.Kv("alloc_slack", 0.002);
    }
    json.Kv("sim_wall_ratio", r.sim_wall_ratio)
        .Kv("control_bps_per_cub_mean", r.control_bps_per_cub_mean)
        .Kv("control_bps_per_cub_max", r.control_bps_per_cub_max)
        .EndObject();
  }
  json.EndArray().EndObject();
  if (json.WriteFile(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
