// Restripe time vs system size (§2.2 claim).
//
// "Because of the switched network between the cubs, the time to restripe a
// system does not depend on the size of the system, but only on the size and
// speed of the cubs and their disks."
//
// Grows systems of increasing size by two cubs each, with the same per-cub
// content, executes the move plan through the pipelined resource simulation,
// and reports completion time: the column should be flat.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/layout/restripe_sim.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("restripe_time: restripe completion time vs system size",
              "§2.2 restriping claim of Bolosky et al., SOSP 1997");

  std::vector<int> sizes = args.quick ? std::vector<int>{4, 8} : std::vector<int>{4, 8, 16, 32};
  TextTable table({"old_cubs", "new_cubs", "content_GB", "moved_GB", "moved_GB/disk",
                   "time_s", "s_per_GB/disk", "busiest_disk%", "busiest_nic%"});

  for (int cubs : sizes) {
    // Same content per cub at every size: 2 hour-long files per cub.
    Catalog catalog(Duration::Seconds(1), 262144, /*single_bitrate=*/true);
    const int files = cubs * 2;
    for (int i = 0; i < files; ++i) {
      Result<FileId> file =
          catalog.AddFile("m" + std::to_string(i), Megabits(2), Duration::Seconds(3600),
                          DiskId(static_cast<uint32_t>((i * 7) % (cubs * 4))));
      TIGER_CHECK(file.ok());
    }
    SystemShape old_shape{cubs, 4, 4};
    SystemShape new_shape{cubs + 2, 4, 4};
    RestripePlan plan = PlanRestripe(catalog, StripeLayout(old_shape), StripeLayout(new_shape));

    RestripeSimOptions options;
    options.seed = args.seed;
    RestripeSimResult result = SimulateRestripe(plan, new_shape, options);

    const double moved_gb = static_cast<double>(result.bytes_moved) / 1e9;
    const double moved_per_disk = moved_gb / new_shape.TotalDisks();
    table.Row()
        .Int(cubs)
        .Int(cubs + 2)
        .Double(static_cast<double>(plan.total_bytes_stored) / 1e9, 1)
        .Double(moved_gb, 1)
        .Double(moved_per_disk, 2)
        .Double(result.completion_time.seconds(), 1)
        .Double(result.completion_time.seconds() / moved_per_disk, 0)
        .Percent(result.max_disk_utilization)
        .Percent(result.max_nic_utilization);
  }
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }
  std::printf(
      "\npaper: restripe time depends on per-cub size and speed, not on system size.\n"
      "Total moved bytes scale ~11x across the sweep, yet completion time tracks only the\n"
      "per-disk moved bytes (the s_per_GB/disk column is flat): the switched network lets\n"
      "every cub move its share in parallel. (The per-disk share itself grows slightly with\n"
      "size because fewer blocks happen to stay put in a larger relayout.)\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
