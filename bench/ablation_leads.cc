// Ablation: the minVStateLead / maxVStateLead gap (§4.1.1).
//
// "Maintaining a certain minimum lead time allows the cubs to tolerate some
// variability in communication latency... Limiting the maximum lead time to a
// constant guarantees that the amount of schedule information that a cub
// needs to keep does not depend on the size of the system. Having a gap in
// between them allows the cubs to group viewer states together into a single
// network message before forwarding them, and so reduce communications
// overhead."
//
// This bench sweeps the lead gap and measures messages/second, bytes/second,
// records per message (batching efficiency), and peak view size; then sweeps
// network latency at a fixed minimum lead to show the latency-tolerance role.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/client/testbed.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

struct Sample {
  double msgs_per_sec = 0;
  double bytes_per_sec = 0;
  double records_per_msg = 0;
  size_t peak_view = 0;
  int64_t lost_blocks = 0;
};

Sample Run(Duration max_lead, Duration base_latency, uint64_t seed, bool quick) {
  TigerConfig config;
  config.max_vstate_lead = max_lead;
  config.net.base_latency = base_latency;
  Testbed testbed(config, seed);
  testbed.AddContent(32, Duration::Seconds(3600));
  testbed.Start();
  const int streams = quick ? 120 : 300;
  testbed.AddLoopingViewers(streams, Duration::Seconds(10), /*steady_state=*/true);
  testbed.RunFor(Duration::Seconds(20));

  TigerSystem& system = testbed.system();
  const NetAddress probe = system.cub(CubId(0)).address();
  const int64_t msgs_before = system.net().ControlMessagesSent(probe);
  const int64_t records_before = system.cub(CubId(1)).counters().records_received +
                                 system.cub(CubId(2)).counters().records_received;
  TimePoint a = testbed.sim().Now();
  testbed.RunFor(Duration::Seconds(20));
  TimePoint b = testbed.sim().Now();

  Sample sample;
  const double window = (b - a).seconds();
  sample.msgs_per_sec =
      static_cast<double>(system.net().ControlMessagesSent(probe) - msgs_before) / window;
  sample.bytes_per_sec = system.net().ControlBytesSent(probe).RatePerSecond(a, b);
  const double records = static_cast<double>(
      system.cub(CubId(1)).counters().records_received +
      system.cub(CubId(2)).counters().records_received - records_before);
  sample.records_per_msg =
      sample.msgs_per_sec > 0 ? records / (sample.msgs_per_sec * window) : 0;
  for (int c = 0; c < system.cub_count(); ++c) {
    sample.peak_view = std::max(
        sample.peak_view, system.cub(CubId(static_cast<uint32_t>(c))).view().entry_count());
  }
  sample.lost_blocks = testbed.TotalClientStats().lost_blocks;
  return sample;
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("ablation_leads: the minVStateLead/maxVStateLead gap",
              "§4.1.1 lead-time discussion of Bolosky et al., SOSP 1997");

  std::printf("sweep 1: max lead (min fixed at 4 s) — batching vs view size\n\n");
  TextTable gap_table({"max_lead_s", "msgs/s(cub0)", "KB/s(cub0)", "records/msg",
                       "peak_view_entries"});
  for (int64_t max_s : {5, 7, 9, 14}) {
    Sample sample = Run(Duration::Seconds(max_s), Duration::Micros(300), args.seed,
                        args.quick);
    gap_table.Row()
        .Int(max_s)
        .Double(sample.msgs_per_sec, 1)
        .Double(sample.bytes_per_sec / 1024.0, 2)
        .Double(sample.records_per_msg, 1)
        .Int(static_cast<int64_t>(sample.peak_view));
  }
  gap_table.Print();

  std::printf("\nsweep 2: network latency at the default leads — latency tolerance\n\n");
  TextTable latency_table({"base_latency_ms", "lost_blocks"});
  // The paper's envelope: "the block play time must be bigger than the
  // largest expected inter-cub communication latency" — the last row steps
  // outside it deliberately.
  for (int64_t ms : {0, 10, 100, 500, 800, 1500}) {
    Sample sample =
        Run(Duration::Seconds(9), Duration::Millis(ms), args.seed + 1, args.quick);
    latency_table.Row().Int(ms).Int(sample.lost_blocks);
  }
  latency_table.Print();
  if (args.csv) {
    std::printf("\n%s\n%s", gap_table.ToCsv().c_str(), latency_table.ToCsv().c_str());
  }
  std::printf(
      "\npaper: a wider gap lets more records share a message (records/msg rises, messages\n"
      "fall) at the cost of a larger view each cub must hold. The minimum lead absorbs\n"
      "sub-block-play-time communication latency without a single late block; beyond the\n"
      "paper's stated envelope (latency >= block play time, last row) the slot-ownership\n"
      "timing argument no longer holds and service degrades — exactly as §4.1.3 warns.\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
