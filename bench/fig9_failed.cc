// Figure 9: Tiger loads with one cub failed.
//
// Same ramp as Figure 8, but one cub is powered off for the entire run. Disk
// utilization and control traffic are probed at a cub that mirrors for the
// failed one, as in the paper. Expected shape (§5): cub CPU stays <= ~85% at
// full load; the mirroring cub's disks approach 95% duty; control traffic is
// roughly double the unfailed case (mirror viewer states).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/client/ramp_experiment.h"
#include "src/client/testbed.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("fig9_failed: component loads vs stream count, one cub failed",
              "Figure 9 of Bolosky et al., SOSP 1997");

  TigerConfig config;
  const CubId failed(7);
  RampOptions options;
  options.fail_cub = failed;
  // Probe the cub immediately succeeding the failed one: it mirrors for it.
  options.probe_cub = CubId(8);
  if (args.quick) {
    options.max_streams = 120;
    options.step_interval = Duration::Seconds(20);
    options.measure_window = Duration::Seconds(10);
  }
  if (args.max_streams > 0) {
    options.max_streams = args.max_streams;
  }

  Testbed testbed(config, args.seed);
  testbed.AddContent(64, Duration::Seconds(3600));
  std::printf("system: %d cubs x %d disks, %lld slots; cub %u failed throughout\n",
              config.shape.num_cubs, config.shape.disks_per_cub,
              static_cast<long long>(testbed.system().geometry().slot_count()),
              failed.value());
  std::printf("probing cub %u (mirrors for the failed cub)\n\n", options.probe_cub.value());

  RampResult result = RunRampExperiment(testbed, options);

  TextTable table({"streams", "cub_cpu%", "ctrl_cpu%", "mirror_disk_util%",
                   "ctrl_traffic_KB/s"});
  for (const RampStepResult& row : result.steps) {
    table.Row()
        .Int(row.target_streams)
        .Percent(row.mean_cub_cpu)
        .Percent(row.controller_cpu, 2)
        .Percent(row.probe_cub_disk_util)
        .Double(row.probe_control_bps / 1024.0, 2);
  }
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }

  const auto& cubs = result.cub_totals;
  const auto& clients = result.client_totals;
  std::printf("\nmirroring: fragments sent %lld, takeovers %lld\n",
              static_cast<long long>(cubs.fragments_sent),
              static_cast<long long>(cubs.takeovers));
  std::printf("reliability: blocks sent %lld, server-missed %lld, client-lost %lld\n",
              static_cast<long long>(cubs.blocks_sent),
              static_cast<long long>(cubs.server_missed_blocks),
              static_cast<long long>(clients.lost_blocks));
  if (cubs.server_missed_blocks + clients.lost_blocks > 0) {
    std::printf("overall loss rate: 1 in %lld\n",
                static_cast<long long>(cubs.blocks_sent /
                                       (cubs.server_missed_blocks + clients.lost_blocks)));
  }
  std::printf("paper: cub CPU <= ~85%% at 602 streams; mirroring disks >95%% duty at full "
              "load; control traffic ~2x the unfailed run, max < 21 KB/s\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
