// Perf regression gate: diff a fresh BENCH_sim.json against a committed
// baseline and exit nonzero when a workload regressed.
//
//   bench_compare --baseline=bench/baselines/BENCH_sim.json
//                 --current=BENCH_sim.json [--threshold=0.7]
//
// Two gates per workload, chosen for CI survival:
//
//  * allocs_per_event: strict (current must not exceed baseline by more than
//    kAllocSlack). Allocation counts are machine-independent, so this is the
//    sharp edge that actually catches "someone added a per-event allocation"
//    — the regression class PR 3's rework was about. Only enforced when BOTH
//    files were produced with TIGER_COUNT_ALLOCS=ON. A baseline entry may
//    carry an explicit "alloc_slack" that widens its gate — scale_sweep emits
//    one for multi-thread entries, whose counts are timing-dependent.
//  * events_per_sec: current must reach threshold x baseline. CI hardware is
//    noisy and differs from the machine that produced the baseline, so the
//    default threshold is deliberately generous; it catches order-of-
//    magnitude cliffs, not percent-level drift.
//
// Every failed gate additionally prints one machine-greppable line
//   REGRESSION workload=<w> field=<f> base=<x> new=<y>
// so CI logs (and humans skimming them) can find the verdicts without
// reading the whole table.
//
// To regenerate the baseline after an intentional change (documented in
// EXPERIMENTS.md):
//   cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release -DTIGER_COUNT_ALLOCS=ON
//   cmake --build build-rel -j
//   build-rel/bench/sim_microbench --quick --seed=1 --json=bench/baselines/BENCH_sim.json
//
// Only standard library; src/common/mini_json.h handles exactly the JSON
// subset bench_util.h's JsonWriter emits.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "src/common/mini_json.h"

namespace {

using tiger::JsonValue;

// Allocations are integers divided by event counts; allow float fuzz only.
constexpr double kAllocSlack = 1e-6;
constexpr double kDefaultThreshold = 0.7;

struct BenchResult {
  double events_per_sec = 0;
  double allocs_per_event = 0;
  // Optional per-entry widening of the alloc gate (baseline side). Emitted by
  // scale_sweep for multi-thread entries, where allocation counts are
  // timing-dependent even though the logical execution is deterministic.
  double alloc_slack = 0;
};

struct BenchFile {
  bool alloc_counting_enabled = false;
  std::map<std::string, BenchResult> results;
};

bool LoadBenchFile(const std::string& path, BenchFile* out, std::string* error) {
  JsonValue root;
  if (!tiger::LoadJsonFile(path, &root, error)) {
    return false;
  }
  if (root.type != JsonValue::Type::kObject) {
    *error = path + ": top level is not an object";
    return false;
  }
  const JsonValue* schema = root.Find("schema_version");
  if (schema == nullptr || schema->number != 1) {
    *error = path + ": missing or unsupported schema_version";
    return false;
  }
  const JsonValue* alloc = root.Find("alloc_counting_enabled");
  out->alloc_counting_enabled = alloc != nullptr && alloc->boolean;
  const JsonValue* results = root.Find("results");
  if (results == nullptr || results->type != JsonValue::Type::kArray) {
    *error = path + ": missing results array";
    return false;
  }
  for (const JsonValue& entry : results->array) {
    const JsonValue* name = entry.Find("name");
    const JsonValue* eps = entry.Find("events_per_sec");
    const JsonValue* ape = entry.Find("allocs_per_event");
    if (name == nullptr || eps == nullptr || ape == nullptr) {
      *error = path + ": result entry missing name/events_per_sec/allocs_per_event";
      return false;
    }
    const JsonValue* slack = entry.Find("alloc_slack");
    out->results[name->str] =
        BenchResult{eps->number, ape->number, slack != nullptr ? slack->number : 0.0};
  }
  if (out->results.empty()) {
    *error = path + ": no results";
    return false;
  }
  return true;
}

std::string FlagValue(int argc, char** argv, const std::string& flag) {
  const std::string prefix = "--" + flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string baseline_path = FlagValue(argc, argv, "baseline");
  const std::string current_path = FlagValue(argc, argv, "current");
  const std::string threshold_str = FlagValue(argc, argv, "threshold");
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_compare --baseline=<json> --current=<json> "
                 "[--threshold=%.2f]\n",
                 kDefaultThreshold);
    return 2;
  }
  const double threshold =
      threshold_str.empty() ? kDefaultThreshold : std::strtod(threshold_str.c_str(), nullptr);
  if (!(threshold > 0 && threshold <= 1)) {
    std::fprintf(stderr, "bench_compare: threshold must be in (0, 1]\n");
    return 2;
  }

  BenchFile baseline;
  BenchFile current;
  std::string error;
  if (!LoadBenchFile(baseline_path, &baseline, &error) ||
      !LoadBenchFile(current_path, &current, &error)) {
    std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
    return 2;
  }

  const bool gate_allocs = baseline.alloc_counting_enabled && current.alloc_counting_enabled;
  if (!gate_allocs) {
    std::printf("bench_compare: alloc gate OFF (alloc counting: baseline=%d current=%d)\n",
                baseline.alloc_counting_enabled ? 1 : 0,
                current.alloc_counting_enabled ? 1 : 0);
  }

  int regressions = 0;
  int compared = 0;
  for (const auto& [name, base] : baseline.results) {
    auto it = current.results.find(name);
    if (it == current.results.end()) {
      std::printf("MISSING  %-24s (in baseline, not in current run)\n", name.c_str());
      std::printf("REGRESSION workload=%s field=present base=1 new=0\n", name.c_str());
      regressions++;
      continue;
    }
    const BenchResult& cur = it->second;
    compared++;
    const double speed_ratio = base.events_per_sec > 0
                                   ? cur.events_per_sec / base.events_per_sec
                                   : 1.0;
    const bool speed_ok = speed_ratio >= threshold;
    const double alloc_slack = base.alloc_slack > kAllocSlack ? base.alloc_slack : kAllocSlack;
    const bool allocs_ok = !gate_allocs ||
                           cur.allocs_per_event <= base.allocs_per_event + alloc_slack;
    std::printf("%-8s %-24s events/s %12.0f -> %12.0f (%5.2fx)  allocs/ev %.4f -> %.4f\n",
                speed_ok && allocs_ok ? "OK" : "REGRESS", name.c_str(),
                base.events_per_sec, cur.events_per_sec, speed_ratio,
                base.allocs_per_event, cur.allocs_per_event);
    if (!speed_ok) {
      std::printf("         ^ throughput below %.2fx of baseline\n", threshold);
      std::printf("REGRESSION workload=%s field=events_per_sec base=%.0f new=%.0f\n",
                  name.c_str(), base.events_per_sec, cur.events_per_sec);
      regressions++;
    }
    if (!allocs_ok) {
      std::printf("         ^ allocs_per_event above baseline (machine-independent gate)\n");
      std::printf("REGRESSION workload=%s field=allocs_per_event base=%.6f new=%.6f\n",
                  name.c_str(), base.allocs_per_event, cur.allocs_per_event);
      regressions++;
    }
  }
  for (const auto& [name, r] : current.results) {
    (void)r;
    if (baseline.results.find(name) == baseline.results.end()) {
      std::printf("NEW      %-24s (not in baseline; informational)\n", name.c_str());
    }
  }

  if (regressions > 0) {
    std::printf("bench_compare: %d regression(s) across %d compared workload(s)\n",
                regressions, compared);
    return 1;
  }
  std::printf("bench_compare: no regressions across %d workload(s)\n", compared);
  return 0;
}
