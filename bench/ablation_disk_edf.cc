// Ablation: disk queue discipline under pressure (§3.2).
//
// "The disk schedule in the single bitrate Tiger not only avoids hotspots,
// it specifies the time at which each block must be sent to the network...
// entries in the disk schedule are free to move around, as long as they're
// completed before they're due at the network."
//
// This bench runs the failed-mode system (mirroring disks near 95% duty)
// with aggressive disk blips under FIFO and earliest-deadline-first queueing
// and compares missed blocks: reordering lets a drive recover from a blip by
// serving the most urgent read first instead of draining the backlog in
// arrival order.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/client/ramp_experiment.h"
#include "src/client/testbed.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

struct Outcome {
  int64_t blocks = 0;
  int64_t server_missed = 0;
  double mirror_disk_util = 0;
};

Outcome Run(DiskQueueDiscipline discipline, uint64_t seed, bool quick) {
  TigerConfig config;
  config.disk_discipline = discipline;
  // Heavy blips so the queue backlog (and thus the discipline) matters.
  config.disk_model.blip_probability = 3e-4;
  config.disk_model.blip_min = Duration::Millis(200);
  config.disk_model.blip_max = Duration::Millis(1200);
  // Variable read-ahead (as the paper describes): submission order diverges
  // from deadline order, so the queue discipline matters.
  config.read_ahead = Duration::Millis(1200);
  config.read_ahead_jitter = Duration::Millis(900);

  RampOptions options;
  options.fail_cub = CubId(7);
  options.probe_cub = CubId(8);
  options.step_size = 100;
  options.step_interval = Duration::Seconds(20);
  options.measure_window = Duration::Seconds(10);
  options.max_streams = quick ? 300 : 602;

  Testbed testbed(config, seed);
  testbed.AddContent(32, Duration::Seconds(3600));
  RampResult result = RunRampExperiment(testbed, options);
  testbed.RunFor(quick ? Duration::Seconds(60) : Duration::Seconds(300));

  Outcome outcome;
  Cub::Counters cubs = testbed.system().TotalCubCounters();
  outcome.blocks = cubs.blocks_sent + cubs.server_missed_blocks;
  outcome.server_missed = cubs.server_missed_blocks;
  outcome.mirror_disk_util = result.steps.back().probe_cub_disk_util;
  return outcome;
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("ablation_disk_edf: FIFO vs deadline-ordered disk queues",
              "§3.2 disk-schedule reordering observation of Bolosky et al., SOSP 1997");

  TextTable table({"discipline", "blocks", "server_missed", "miss_rate"});
  for (DiskQueueDiscipline discipline :
       {DiskQueueDiscipline::kFifo, DiskQueueDiscipline::kEarliestDeadlineFirst}) {
    Outcome outcome = Run(discipline, args.seed, args.quick);
    char rate[48];
    if (outcome.server_missed > 0) {
      std::snprintf(rate, sizeof(rate), "1 in %lld",
                    static_cast<long long>(outcome.blocks / outcome.server_missed));
    } else {
      std::snprintf(rate, sizeof(rate), "no misses");
    }
    table.Row()
        .Str(discipline == DiskQueueDiscipline::kFifo ? "FIFO" : "EDF")
        .Int(outcome.blocks)
        .Int(outcome.server_missed)
        .Str(rate);
  }
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }
  std::printf(
      "\npaper: because reads only need to finish before their network due times, the\n"
      "drive may reorder them. Under blip-induced backlogs on ~95%%-duty mirroring disks,\n"
      "deadline ordering sacrifices already-doomed reads instead of on-time ones and\n"
      "misses fewer blocks than FIFO.\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
