// Ablation: the decluster factor tradeoff (§2.3).
//
// "The tradeoff in the choice of decluster factor is between reserving
// bandwidth for failed mode operation and decreased fault tolerance. With a
// decluster factor of 4, only a fifth of total disk and network bandwidth
// needs to be reserved for failed mode operation, but a second failure on any
// of 8 machines would result in the loss of data. Conversely, a decluster
// factor of 2 consumes a third of system bandwidth for fault tolerance, but
// can survive failures more than two cubs away from any other failure."
//
// For each decluster factor this bench reports the schedule capacity (slots),
// the bandwidth fraction reserved for failed-mode operation, the number of
// machines a second failure must avoid, and — measured — the failed-mode
// mirroring-disk duty at full load.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/client/ramp_experiment.h"
#include "src/client/testbed.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("ablation_decluster: mirror declustering factor tradeoff",
              "§2.3 of Bolosky et al., SOSP 1997");

  TextTable table({"decluster", "slots", "reserved_bw", "2nd-failure danger zone",
                   "mirror_disk_duty@full", "cub_cpu@full"});

  for (int decluster : {1, 2, 4, 8}) {
    TigerConfig config;
    config.shape.decluster_factor = decluster;

    // Analytic columns straight from the model.
    TigerConfig unreserved = config;
    unreserved.fault_tolerant = false;
    const double reserved =
        1.0 - static_cast<double>(config.MaxStreams()) /
                  static_cast<double>(unreserved.MaxStreams());

    // Measured failed-mode load at this factor's full capacity.
    RampOptions options;
    options.fail_cub = CubId(7);
    options.probe_cub = CubId(8);
    options.max_streams = static_cast<int>(config.MaxStreams());
    if (args.quick) {
      options.max_streams = std::min(options.max_streams, 150);
      options.step_interval = Duration::Seconds(20);
      options.measure_window = Duration::Seconds(10);
      options.step_size = 50;
    } else {
      options.step_size = 100;
      options.step_interval = Duration::Seconds(30);
      options.measure_window = Duration::Seconds(20);
    }
    Testbed testbed(config, args.seed);
    testbed.AddContent(32, Duration::Seconds(3600));
    RampResult result = RunRampExperiment(testbed, options);
    const RampStepResult& full = result.steps.back();

    char danger[48];
    std::snprintf(danger, sizeof(danger), "%d machines", 2 * decluster);
    table.Row()
        .Int(decluster)
        .Int(config.MaxStreams())
        .Percent(reserved)
        .Str(danger)
        .Percent(full.probe_cub_disk_util)
        .Percent(full.mean_cub_cpu);
  }
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }
  std::printf(
      "\npaper: decluster 4 reserves ~a fifth of bandwidth (vs ~a third at decluster 2)\n"
      "but widens the window where a second failure loses data (the danger zone spans the\n"
      "failed cub's mirrors and mirror-sources). Larger factors buy capacity with fragility;\n"
      "the paper's testbed chose 4. Our reserved fractions run higher than the paper's\n"
      "idealized 1/(decluster+1) because each fragment read pays full seek+rotation\n"
      "overhead, which the idealization ignores; the trend (reserve shrinks, danger zone\n"
      "grows, with diminishing capacity returns past 4) is the paper's argument.\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
