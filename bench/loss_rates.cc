// Block delivery reliability (the §5 text table).
//
// Three measurements, as in the paper:
//   1. unfailed ramp to 602 streams plus a stretch at full load
//      (paper: ~4.1 M blocks, 15 server-missed + 8 client-missed,
//       ~1 in 180,000);
//   2. one-cub-failed ramp (paper: ~3.6 M blocks, 46 missed, ~1 in 78,000);
//   3. one-cub-failed hour at 602 streams (paper: 54 missed of 2.1 M,
//       ~1 in 40,000).
//
// Disk performance "blips" (thermal recalibration etc.) are enabled for this
// bench; they are the paper's diagnosed cause of server-missed blocks, and at
// the >95% failed-mode disk duty they queue-amplify, which is why the failed
// rates are an order of magnitude worse than unfailed — the same asymmetry
// the paper reports.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/client/ramp_experiment.h"
#include "src/client/testbed.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

struct PhaseCounters {
  int64_t blocks = 0;
  int64_t server_missed = 0;
  int64_t client_lost = 0;
};

PhaseCounters Snapshot(Testbed& testbed) {
  PhaseCounters snap;
  Cub::Counters cubs = testbed.system().TotalCubCounters();
  snap.blocks = cubs.blocks_sent + cubs.server_missed_blocks;
  snap.server_missed = cubs.server_missed_blocks;
  snap.client_lost = testbed.TotalClientStats().lost_blocks;
  return snap;
}

PhaseCounters Delta(const PhaseCounters& a, const PhaseCounters& b) {
  return PhaseCounters{b.blocks - a.blocks, b.server_missed - a.server_missed,
                       b.client_lost - a.client_lost};
}

std::string RateString(const PhaseCounters& c) {
  const int64_t losses = c.server_missed + c.client_lost;
  if (losses == 0) {
    return "no losses";
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "1 in %lld", static_cast<long long>(c.blocks / losses));
  return buf;
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("loss_rates: end-to-end block delivery reliability",
              "§5 reliability table (text) of Bolosky et al., SOSP 1997");

  TigerConfig config;
  // The paper's testbed disks exhibited occasional performance blips; enable
  // them for this experiment. Most blips hide inside the read-ahead slack;
  // only the tail of the distribution (or a blip landing on a near-saturated
  // failed-mode queue) costs a deadline.
  config.disk_model.blip_probability = 5e-6;
  config.disk_model.blip_min = Duration::Millis(50);
  config.disk_model.blip_max = Duration::Millis(800);

  RampOptions ramp;
  Duration full_load_run = Duration::Seconds(3600);
  if (args.quick) {
    ramp.max_streams = 180;
    ramp.step_interval = Duration::Seconds(20);
    full_load_run = Duration::Seconds(60);
  }
  if (args.max_streams > 0) {
    ramp.max_streams = args.max_streams;
  }

  TextTable table({"experiment", "blocks", "server_missed", "client_lost", "loss_rate"});

  // --- experiment 1: unfailed ramp + full-load stretch --------------------
  {
    Testbed testbed(config, args.seed);
    testbed.AddContent(64, Duration::Seconds(3600));
    RunRampExperiment(testbed, ramp);
    // Long enough that total blocks approach the paper's ~4.1 M.
    testbed.RunFor(full_load_run + (args.quick ? Duration::Zero() : Duration::Seconds(1800)));
    PhaseCounters total = Snapshot(testbed);
    table.Row()
        .Str("unfailed (ramp + full load)")
        .Int(total.blocks)
        .Int(total.server_missed)
        .Int(total.client_lost)
        .Str(RateString(total));
  }

  // --- side measurement: block-cache hit rate at full load ----------------
  {
    TigerConfig cache_config = config;
    cache_config.block_cache_bytes = 20LL * 1024 * 1024;  // The paper's 20 MB.
    Testbed testbed(cache_config, args.seed + 3);
    testbed.AddContent(64, Duration::Seconds(3600));
    testbed.Start();
    testbed.AddLoopingViewers(args.quick ? 180 : 602,
                              args.quick ? Duration::Seconds(30) : Duration::Seconds(120),
                              /*steady_state=*/true);
    testbed.RunFor(args.quick ? Duration::Seconds(60) : Duration::Seconds(300));
    std::printf("block cache hit rate at full load: %.3f%% (paper: < 0.05%%; higher here "
                "because synthetic viewers phase-lock on shared files more often than the "
                "paper's testbed clients)\n\n",
                testbed.system().BlockCacheHitRate() * 100.0);
  }

  // --- experiments 2 & 3: failed ramp, then an hour at 602 ----------------
  {
    RampOptions failed_ramp = ramp;
    failed_ramp.fail_cub = CubId(7);
    failed_ramp.probe_cub = CubId(8);
    Testbed testbed(config, args.seed + 17);
    testbed.AddContent(64, Duration::Seconds(3600));
    RunRampExperiment(testbed, failed_ramp);
    PhaseCounters after_ramp = Snapshot(testbed);
    table.Row()
        .Str("one cub failed, ramp")
        .Int(after_ramp.blocks)
        .Int(after_ramp.server_missed)
        .Int(after_ramp.client_lost)
        .Str(RateString(after_ramp));

    testbed.RunFor(full_load_run);
    PhaseCounters hour = Delta(after_ramp, Snapshot(testbed));
    table.Row()
        .Str("one cub failed, full load")
        .Int(hour.blocks)
        .Int(hour.server_missed)
        .Int(hour.client_lost)
        .Str(RateString(hour));
  }

  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }
  std::printf("\npaper: unfailed ~1 in 180,000; failed ramp ~1 in 78,000; failed full load "
              "~1 in 40,000.\nShape to match: failed-mode rates are several times worse than "
              "unfailed, and all rates stay in the 1-in-tens-of-thousands range or better.\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
