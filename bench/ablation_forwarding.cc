// Ablation: double-forwarding vs single-forwarding (§4.1.1).
//
// "We could have chosen to forward viewer states only once... We chose not to
// do this because cub failure detection is timeout based... between the
// failure and the detection, not only would the data stored on the failed cub
// be lost, but so also would the data from the subsequent cubs that never
// received the viewer states."
//
// This bench runs the same cub-failure scenario with forward_copies = 1 and
// = 2 and measures (a) steady-state control traffic (single forwarding halves
// it — the cost the paper chose to pay) and (b) blocks lost around the
// failure (single forwarding loses whole stream-chains, not just the dead
// cub's blocks).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/client/testbed.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

struct Outcome {
  double control_bps = 0;
  int64_t lost_blocks = 0;
  int64_t stalled_streams = 0;  // Streams that stopped making progress.
  int64_t blocks_after_failure = 0;
};

Outcome Run(int forward_copies, bool reforward, bool fail, uint64_t seed, bool quick) {
  TigerConfig config;
  config.forward_copies = forward_copies;
  config.reforward_on_failure = reforward;
  // Make the detection window longer than maxVStateLead: the regime where
  // pre-forwarded records run out and the forwarding policy decides the
  // outcome.
  config.deadman_timeout = Duration::Seconds(12);
  Testbed testbed(config, seed);
  testbed.AddContent(32, Duration::Seconds(3600));
  testbed.Start();
  const int streams = quick ? 100 : 280;
  testbed.AddLoopingViewers(streams, Duration::Seconds(15), /*steady_state=*/true);
  testbed.RunFor(Duration::Seconds(30));

  Outcome outcome;
  TimePoint b0 = testbed.sim().Now();
  outcome.control_bps =
      testbed.system().CubControlTrafficBps(CubId(0), b0 - Duration::Seconds(10), b0);

  if (fail) {
    testbed.system().FailCubNow(CubId(5));
  }
  int64_t blocks_before = testbed.TotalClientStats().blocks_complete;
  testbed.RunFor(Duration::Seconds(40));
  outcome.lost_blocks = testbed.TotalClientStats().lost_blocks;
  outcome.blocks_after_failure = testbed.TotalClientStats().blocks_complete - blocks_before;

  // A stream is stalled if its viewer is still nominally playing but made no
  // recent progress: compare two snapshots.
  std::vector<int64_t> snapshot;
  for (const auto& viewer : testbed.viewers()) {
    snapshot.push_back(viewer->stats().blocks_complete);
  }
  testbed.RunFor(Duration::Seconds(10));
  for (size_t i = 0; i < testbed.viewers().size(); ++i) {
    const auto& viewer = testbed.viewers()[i];
    if (viewer->playing() && viewer->stats().blocks_complete == snapshot[i]) {
      outcome.stalled_streams++;
    }
  }
  return outcome;
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("ablation_forwarding: double- vs single-forwarding of viewer states",
              "§4.1.1 design discussion of Bolosky et al., SOSP 1997");

  TextTable table({"copies", "reforward", "failure", "ctrl_KB/s", "lost_blocks",
                   "stalled_streams"});
  struct Mode {
    int copies;
    bool reforward;
  };
  // The paper's chosen design (2, with recreate-on-failure also implied for
  // bridging), the rejected simple alternative (1, none), and the rejected
  // complex alternative (1, with recreate).
  for (Mode mode : {Mode{2, true}, Mode{1, false}, Mode{1, true}}) {
    for (bool fail : {false, true}) {
      Outcome outcome = Run(mode.copies, mode.reforward, fail, args.seed, args.quick);
      table.Row()
          .Int(mode.copies)
          .Str(mode.reforward ? "yes" : "no")
          .Str(fail ? "cub 5 dies" : "none")
          .Double(outcome.control_bps / 1024.0, 2)
          .Int(outcome.lost_blocks)
          .Int(outcome.stalled_streams);
    }
  }
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }
  std::printf(
      "\npaper's tradeoff, measured (detection window deliberately > maxVStateLead):\n"
      "single forwarding halves steady-state control traffic, but without a recreate-on-\n"
      "failure protocol the schedule information swallowed by the dead cub is gone —\n"
      "streams stall permanently. Recreating it (copies=1 + reforward) works but is the\n"
      "\"difficulty in getting a single forwarding protocol right\" the paper chose to\n"
      "avoid by double-forwarding, which keeps a live backup at all times.\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
