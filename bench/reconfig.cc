// Failure reconfiguration time (§5, final measurement).
//
// "We loaded the system to 50% of capacity and cut the power to a cub. We
// inspected the clients' logs and found about 8 seconds between the earliest
// and latest lost block."
//
// The window is dominated by the deadman detection latency: blocks whose
// primaries were due from the dead cub between the power cut and the mirror
// takeover are unrecoverable; everything after is served from the
// declustered secondaries.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/client/testbed.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("reconfig: service gap after cutting power to a cub",
              "§5 reconfiguration measurement of Bolosky et al., SOSP 1997");

  TigerConfig config;
  Testbed testbed(config, args.seed);
  testbed.AddContent(64, Duration::Seconds(3600));
  testbed.Start();

  const int streams = args.quick ? 100 : 301;  // ~50% of 602.
  testbed.AddLoopingViewers(streams, Duration::Seconds(10));
  testbed.RunFor(Duration::Seconds(30));
  std::printf("loaded to %d streams (%.0f%% of capacity); cutting power to cub 5...\n",
              streams,
              100.0 * streams / static_cast<double>(testbed.system().geometry().slot_count()));

  const TimePoint cut = testbed.sim().Now();
  testbed.system().FailCubNow(CubId(5));
  testbed.RunFor(Duration::Seconds(40));

  // Inspect the clients' logs.
  TimePoint earliest = TimePoint::Max();
  TimePoint latest = TimePoint::Zero();
  int64_t lost = 0;
  for (const auto& viewer : testbed.viewers()) {
    for (TimePoint t : viewer->loss_times()) {
      earliest = std::min(earliest, t);
      latest = std::max(latest, t);
      ++lost;
    }
  }

  TextTable table({"metric", "value"});
  table.Row().Str("streams at failure").Int(streams);
  table.Row().Str("lost blocks (all clients)").Int(lost);
  if (lost > 0) {
    table.Row().Str("earliest lost block (s after cut)").Double((earliest - cut).seconds(), 2);
    table.Row().Str("latest lost block (s after cut)").Double((latest - cut).seconds(), 2);
    table.Row().Str("service gap (latest - earliest)").Double((latest - earliest).seconds(), 2);
  }
  table.Row().Str("deadman timeout (config)").Double(config.deadman_timeout.seconds(), 1);
  ViewerClient::Stats stats = testbed.TotalClientStats();
  table.Row().Str("fragments delivered after takeover").Int(stats.fragments_received);
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }
  std::printf("\npaper: ~8 seconds between earliest and latest lost block.\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
