// §3.3: why schedule management must be distributed.
//
// Sweeps system size at 90% schedule load and compares, for a centralized
// schedule (controller sends a ~100-byte per-block command to the serving
// cub) versus the distributed schedule (cubs forward viewer states around
// the ring):
//
//   * controller egress bytes/second — central grows linearly with total
//     streams (the paper computes 3-4 MB/s at ~40,000 streams / 1000 cubs,
//     "probably beyond the capability" of the era's PCs); distributed is ~0;
//   * controller CPU — central exceeds a whole CPU well before 1000 cubs;
//   * per-cub control traffic — distributed stays constant (~10 KB/s)
//     regardless of system size, the scalability property of §4.
//
// Runs control-plane only (no disk/data simulation): this experiment is
// about schedule management costs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/central.h"
#include "src/core/system.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

struct Row {
  int cubs = 0;
  int streams = 0;
  double central_ctrl_bps = 0;
  double central_ctrl_cpu = 0;
  double dist_ctrl_bps = 0;
  double dist_percub_bps = 0;
  double dist_percub_cpu = 0;
};

TigerConfig ConfigForSize(int cubs) {
  TigerConfig config;
  config.shape.num_cubs = cubs;
  config.simulate_data_plane = false;
  return config;
}

Duration FileDurationFor(const TigerConfig& config) {
  // Long enough that every disk holds a block of the file and no stream hits
  // EOF during the measurement.
  return config.block_play_time * (config.shape.TotalDisks() + 600);
}

Row MeasureSize(int cubs, uint64_t seed, Duration run, Duration window) {
  Row row;
  row.cubs = cubs;
  TigerConfig config = ConfigForSize(cubs);
  const int streams =
      static_cast<int>(static_cast<double>(config.MaxStreams()) * 0.9);
  row.streams = streams;

  {
    CentralSystem central(config, seed);
    SinkEndpoint sink;
    NetAddress sink_addr = central.net().Attach(&sink, "sink", config.client_nic_bps);
    FileId file =
        central.AddFile("content", config.max_stream_bps, FileDurationFor(config)).value();
    int made = central.BootstrapStreams(streams, sink_addr, file, config.max_stream_bps);
    TIGER_CHECK(made == streams);
    central.Start();
    central.sim().RunUntil(TimePoint::Zero() + run);
    TimePoint b = central.sim().Now();
    TimePoint a = b - window;
    row.central_ctrl_bps = central.ControllerControlTrafficBps(a, b);
    row.central_ctrl_cpu = central.ControllerCpu(a, b);
  }
  {
    TigerSystem dist(config, seed);
    SinkEndpoint sink;
    NetAddress sink_addr = dist.net().Attach(&sink, "sink", config.client_nic_bps);
    Result<FileId> file = dist.AddFile("content", config.max_stream_bps,
                                       FileDurationFor(config));
    int made = dist.BootstrapStreams(streams, sink_addr, file.value(), config.max_stream_bps);
    TIGER_CHECK(made == streams);
    dist.Start();
    dist.sim().RunUntil(TimePoint::Zero() + run);
    TimePoint b = dist.sim().Now();
    TimePoint a = b - window;
    row.dist_ctrl_bps = dist.ControllerControlTrafficBps(a, b);
    // Probe one cub; all are symmetric.
    row.dist_percub_bps = dist.CubControlTrafficBps(CubId(0), a, b);
    row.dist_percub_cpu =
        dist.cub(CubId(0)).cpu_meter().SumBetween(a, b) / static_cast<double>((b - a).micros());
  }
  return row;
}

// --- tracing overhead -------------------------------------------------------
//
// The observability layer must be free when it is off: the control-plane hot
// path pays one null-pointer check per trace point when tracing was never
// enabled, and one predictable branch when attached but disabled. This
// section measures all three modes on the same seeded workload and prints
// the wall-clock deltas (acceptance: disabled-mode regression < 2%).

enum class TraceMode { kAbsent, kAttachedDisabled, kRecording };

double RunDistributedOnce(uint64_t seed, int cubs, Duration run, TraceMode mode,
                          uint64_t* events_recorded, bool print_metrics) {
  TigerConfig config = ConfigForSize(cubs);
  TigerSystem dist(config, seed);
  const int streams = static_cast<int>(static_cast<double>(config.MaxStreams()) * 0.9);
  if (mode != TraceMode::kAbsent) {
    dist.EnableTracing();
    dist.tracer()->set_enabled(mode == TraceMode::kRecording);
  }
  SinkEndpoint sink;
  NetAddress sink_addr = dist.net().Attach(&sink, "sink", config.client_nic_bps);
  FileId file =
      dist.AddFile("content", config.max_stream_bps, FileDurationFor(config)).value();
  int made = dist.BootstrapStreams(streams, sink_addr, file, config.max_stream_bps);
  TIGER_CHECK(made == streams);
  dist.Start();

  const auto wall_start = std::chrono::steady_clock::now();
  dist.sim().RunUntil(TimePoint::Zero() + run);
  const auto wall_end = std::chrono::steady_clock::now();

  if (events_recorded != nullptr) {
    *events_recorded = mode == TraceMode::kAbsent ? 0 : dist.tracer()->recorded();
  }
  if (print_metrics && mode == TraceMode::kRecording) {
    dist.SnapshotMetrics(TimePoint::Zero(), dist.sim().Now());
    dist.metrics()->PrintSummary();
  }
  return std::chrono::duration<double>(wall_end - wall_start).count();
}

void MeasureTracingOverhead(uint64_t seed, bool quick) {
  const int cubs = 14;
  const Duration run = Duration::Seconds(quick ? 8 : 16);
  // Warm-up run so allocator/page-cache state does not bias the baseline.
  RunDistributedOnce(seed, cubs, run, TraceMode::kAbsent, nullptr, false);

  // Best-of-N per mode: the wall times are milliseconds, so a single sample
  // is dominated by scheduler jitter; the minimum is the stable estimate.
  const int reps = quick ? 3 : 5;
  uint64_t recorded = 0;
  double absent = 1e30;
  double disabled = 1e30;
  double recording = 1e30;
  for (int i = 0; i < reps; ++i) {
    absent = std::min(absent,
                      RunDistributedOnce(seed, cubs, run, TraceMode::kAbsent, nullptr, false));
    disabled = std::min(disabled, RunDistributedOnce(seed, cubs, run,
                                                     TraceMode::kAttachedDisabled, nullptr,
                                                     false));
    recording = std::min(
        recording, RunDistributedOnce(seed, cubs, run, TraceMode::kRecording, &recorded,
                                      /*print_metrics=*/i == reps - 1));
  }

  std::printf("\ntracing overhead (%d cubs, %.0f simulated seconds, same seed):\n", cubs,
              static_cast<double>(run.micros()) / 1e6);
  TextTable table({"mode", "wall_s", "vs_absent%", "events"});
  table.Row().Str("absent").Double(absent, 3).Str("-").Int(0);
  table.Row()
      .Str("attached-disabled")
      .Double(disabled, 3)
      .Percent(disabled / absent - 1.0, 2)
      .Int(0);
  table.Row()
      .Str("recording")
      .Double(recording, 3)
      .Percent(recording / absent - 1.0, 2)
      .Int(static_cast<int64_t>(recorded));
  table.Print();
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("scalability: centralized vs distributed schedule management",
              "§3.3 analysis of Bolosky et al., SOSP 1997");

  std::vector<int> sizes = args.quick ? std::vector<int>{14, 56}
                                      : std::vector<int>{14, 56, 140, 350, 700, 1000};
  const Duration run = Duration::Seconds(16);
  const Duration window = Duration::Seconds(8);

  TextTable table({"cubs", "streams", "central_ctrl_KB/s", "central_ctrl_cpu%",
                   "dist_ctrl_B/s", "dist_percub_KB/s", "dist_percub_ctrl_cpu%"});
  for (int cubs : sizes) {
    Row row = MeasureSize(cubs, args.seed, run, window);
    table.Row()
        .Int(row.cubs)
        .Int(row.streams)
        .Double(row.central_ctrl_bps / 1024.0, 1)
        .Percent(row.central_ctrl_cpu)
        .Double(row.dist_ctrl_bps, 1)
        .Double(row.dist_percub_bps / 1024.0, 2)
        .Percent(row.dist_percub_cpu, 2);
    std::fflush(stdout);
  }
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }
  MeasureTracingOverhead(args.seed, args.quick);
  std::printf(
      "\npaper: a central controller at ~1000 cubs / ~40k streams must push 3-4 MB/s of\n"
      "reliable control traffic (100 B/block plus headers) — infeasible for a mid-90s PC —\n"
      "while the distributed schedule's per-cub control traffic is independent of system\n"
      "size and its controller sends (almost) nothing.\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
