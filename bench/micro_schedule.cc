// Microbenchmarks of schedule-management operations (google-benchmark).
//
// Supports the paper's claim that "the amount of work done to implement the
// Tiger schedule is small relative to the work needed to move megabytes of
// data per second from the disk to the network" — every operation here is
// sub-microsecond to a few microseconds, versus ~tens of milliseconds of
// CPU to packetize one block.

#include <benchmark/benchmark.h>

#include "src/core/config.h"
#include "src/layout/striping.h"
#include "src/schedule/geometry.h"
#include "src/schedule/network_schedule.h"
#include "src/schedule/schedule_view.h"
#include "src/schedule/viewer_state.h"

namespace tiger {
namespace {

TigerConfig PaperConfig() { return TigerConfig{}; }

void BM_SlotBoundaryMath(benchmark::State& state) {
  ScheduleGeometry geometry = PaperConfig().MakeGeometry();
  int64_t slot = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry.SlotStartOffset(slot));
    slot = (slot + 97) % geometry.slot_count();
  }
}
BENCHMARK(BM_SlotBoundaryMath);

void BM_DiskPointer(benchmark::State& state) {
  ScheduleGeometry geometry = PaperConfig().MakeGeometry();
  int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geometry.DiskPointer(DiskId(13), TimePoint::FromMicros(t)));
    t += 1234567;
  }
}
BENCHMARK(BM_DiskPointer);

void BM_NextOwnership(benchmark::State& state) {
  TigerConfig config = PaperConfig();
  ScheduleGeometry geometry = config.MakeGeometry();
  OwnershipWindows windows(&geometry, config.MakeOwnershipParams());
  int64_t t = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(windows.NextOwnership(DiskId(7), TimePoint::FromMicros(t)));
    t += 93023;
  }
}
BENCHMARK(BM_NextOwnership);

void BM_ViewerStateEncodeDecode(benchmark::State& state) {
  ViewerStateRecord record;
  record.viewer = ViewerId(42);
  record.instance = PlayInstanceId(777);
  record.file = FileId(3);
  record.position = 1234;
  record.slot = SlotId(567);
  record.sequence = 1234;
  record.bitrate_bps = Megabits(2);
  record.due = TimePoint::FromMicros(999999999);
  for (auto _ : state) {
    auto wire = record.Encode();
    benchmark::DoNotOptimize(ViewerStateRecord::Decode(wire));
  }
}
BENCHMARK(BM_ViewerStateEncodeDecode);

void BM_ViewApplyViewerState(benchmark::State& state) {
  ScheduleView view(Duration::Seconds(3));
  ViewerStateRecord record;
  record.viewer = ViewerId(1);
  record.instance = PlayInstanceId(1);
  record.slot = SlotId(100);
  int64_t seq = 0;
  for (auto _ : state) {
    record.sequence = seq++;
    record.due = TimePoint::FromMicros(seq * 1000000);
    benchmark::DoNotOptimize(view.ApplyViewerState(record, record.due));
    if (seq % 512 == 0) {
      view.EvictBefore(record.due - Duration::Seconds(1), record.due);
    }
  }
}
BENCHMARK(BM_ViewApplyViewerState);

void BM_NetworkScheduleCanInsert(benchmark::State& state) {
  NetworkSchedule schedule(Duration::Seconds(1), 14, 155000000);
  // Populate to ~80% with 2 Mbit entries.
  uint64_t instance = 1;
  for (int i = 0; i < 800; ++i) {
    Duration offset = Duration::Micros((i * 977537) % schedule.length().micros());
    if (schedule.CanInsert(offset, Megabits(2))) {
      schedule.Insert(offset, Megabits(2), false, ViewerId(1), PlayInstanceId(instance++));
    }
  }
  int64_t x = 0;
  for (auto _ : state) {
    Duration offset = Duration::Micros(x % schedule.length().micros());
    benchmark::DoNotOptimize(schedule.CanInsert(offset, Megabits(2)));
    x += 250000;
  }
  state.SetLabel(std::to_string(schedule.entry_count()) + " entries");
}
BENCHMARK(BM_NetworkScheduleCanInsert);

void BM_StripingMath(benchmark::State& state) {
  TigerConfig config = PaperConfig();
  StripeLayout layout(config.shape);
  Catalog catalog(config.block_play_time, config.block_bytes, true);
  FileId file = catalog.AddFile("f", Megabits(2), Duration::Seconds(3600), DiskId(5)).value();
  const FileInfo& info = catalog.Get(file);
  int64_t block = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout.PrimaryDisk(info, block));
    benchmark::DoNotOptimize(layout.SecondaryLocation(info, block, 2));
    block = (block + 1) % info.block_count;
  }
}
BENCHMARK(BM_StripingMath);

void BM_SoonestServingDisk(benchmark::State& state) {
  ScheduleGeometry geometry = PaperConfig().MakeGeometry();
  int64_t s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry.SoonestServingDisk(
        SlotId(static_cast<uint32_t>(s)), TimePoint::FromMicros(123456789)));
    s = (s + 31) % geometry.slot_count();
  }
}
BENCHMARK(BM_SoonestServingDisk);

}  // namespace
}  // namespace tiger

BENCHMARK_MAIN();
