// Shared helpers for the experiment benches.
//
// Every bench binary accepts:
//   --quick            scaled-down run (fewer steps, smaller system) for CI
//   --seed=N           RNG seed (default 1)
//   --max-streams=N    override the ramp target
//   --csv              also dump rows as CSV after the table
//   --json=PATH        write machine-readable results to PATH (benches that
//                      support it; see EXPERIMENTS.md for each schema)
//   --threads=N        run on the sharded parallel engine with N worker
//                      threads (benches that support it; 1 = serial engine)
//   --shards=N         pin the shard count for sharded runs (benches that
//                      support it; default: bench-specific, scale_sweep uses
//                      sim_shards=0 auto-tune when --threads > 1)
//   --profile-prefix=P enable the self-profiler and write one
//                      <P><workload>.profile.json per measured system
//                      (benches that support it; see EXPERIMENTS.md E18)
//   --profile-overhead-max=F  fail (exit 1) if the profiled rerun of the
//                      gating workload is more than F (fraction, e.g. 0.05)
//                      slower than the unprofiled run (sim_microbench)
//   --recorder-overhead-max=F  same gate for the flight-recorder rerun
//                      (tracing + recorder ring + checkpoints); also fails if
//                      the recorded rerun allocates per event in a
//                      -DTIGER_COUNT_ALLOCS build (sim_microbench)

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace tiger {

struct BenchArgs {
  bool quick = false;
  bool csv = false;
  uint64_t seed = 1;
  int max_streams = -1;  // -1: bench default.
  int threads = 1;        // > 1: sharded engine with this many workers.
  int shards = -1;        // -1: bench default; 0: host auto-tune; >= 1: pinned.
  std::string json_path;  // Empty: bench-specific default (may be "no JSON").
  std::string profile_prefix;       // Non-empty: profile + write artifacts.
  double profile_overhead_max = 0;  // > 0: gate profiled rerun slowdown.
  double recorder_overhead_max = 0;  // > 0: gate flight-recorder slowdown.

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(a, "--csv") == 0) {
        args.csv = true;
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        args.seed = std::strtoull(a + 7, nullptr, 10);
      } else if (std::strncmp(a, "--max-streams=", 14) == 0) {
        args.max_streams = std::atoi(a + 14);
      } else if (std::strncmp(a, "--threads=", 10) == 0) {
        args.threads = std::atoi(a + 10);
        if (args.threads < 1) {
          std::fprintf(stderr, "--threads must be >= 1\n");
          std::exit(1);
        }
      } else if (std::strncmp(a, "--shards=", 9) == 0) {
        args.shards = std::atoi(a + 9);
        if (args.shards < 0) {
          std::fprintf(stderr, "--shards must be >= 0 (0 = host auto-tune)\n");
          std::exit(1);
        }
      } else if (std::strncmp(a, "--json=", 7) == 0) {
        args.json_path = a + 7;
      } else if (std::strncmp(a, "--profile-prefix=", 17) == 0) {
        args.profile_prefix = a + 17;
      } else if (std::strncmp(a, "--profile-overhead-max=", 23) == 0) {
        args.profile_overhead_max = std::strtod(a + 23, nullptr);
        if (args.profile_overhead_max <= 0) {
          std::fprintf(stderr, "--profile-overhead-max must be > 0 (a fraction)\n");
          std::exit(1);
        }
      } else if (std::strncmp(a, "--recorder-overhead-max=", 24) == 0) {
        args.recorder_overhead_max = std::strtod(a + 24, nullptr);
        if (args.recorder_overhead_max <= 0) {
          std::fprintf(stderr, "--recorder-overhead-max must be > 0 (a fraction)\n");
          std::exit(1);
        }
      } else if (std::strcmp(a, "--help") == 0) {
        std::fprintf(stderr,
                     "usage: %s [--quick] [--csv] [--seed=N] [--max-streams=N] "
                     "[--threads=N] [--shards=N] [--json=PATH] "
                     "[--profile-prefix=P] [--profile-overhead-max=F] "
                     "[--recorder-overhead-max=F]\n",
                     argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag %s (try --help)\n", a);
        std::exit(1);
      }
    }
    return args;
  }
};

// Minimal streaming JSON writer for machine-readable bench output
// (BENCH_*.json files consumed by CI and by humans diffing runs). Values are
// emitted in call order; the writer tracks commas and nesting so call sites
// stay linear. Keys must be plain identifiers (no escaping is performed on
// keys; string *values* are escaped).
class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Sep();
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& EndObject() {
    out_ += '}';
    stack_.pop_back();
    return *this;
  }
  JsonWriter& BeginArray() {
    Sep();
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& EndArray() {
    out_ += ']';
    stack_.pop_back();
    return *this;
  }
  JsonWriter& Key(const char* k) {
    Sep();
    out_ += '"';
    out_ += k;
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }
  JsonWriter& String(const std::string& v) {
    Sep();
    out_ += '"';
    for (char c : v) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
    return *this;
  }
  JsonWriter& Int(int64_t v) {
    Sep();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Uint(uint64_t v) {
    Sep();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Double(double v) {
    Sep();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& Bool(bool v) {
    Sep();
    out_ += v ? "true" : "false";
    return *this;
  }

  // Convenience: Key() + value in one call.
  JsonWriter& Kv(const char* k, const std::string& v) { return Key(k).String(v); }
  JsonWriter& Kv(const char* k, const char* v) { return Key(k).String(std::string(v)); }
  JsonWriter& Kv(const char* k, int64_t v) { return Key(k).Int(v); }
  JsonWriter& Kv(const char* k, uint64_t v) { return Key(k).Uint(v); }
  JsonWriter& Kv(const char* k, int v) { return Key(k).Int(v); }
  JsonWriter& Kv(const char* k, double v) { return Key(k).Double(v); }
  JsonWriter& Kv(const char* k, bool v) { return Key(k).Bool(v); }

  const std::string& Str() const { return out_; }

  // Writes the accumulated document (plus a trailing newline) to `path`.
  // Returns false (with a note on stderr) on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(out_.data(), 1, out_.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  // Emits a comma when this value follows a sibling at the same nesting
  // level; key-value pairs count as one sibling.
  void Sep() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) {
        out_ += ',';
      }
      stack_.back() = true;
    }
  }

  std::string out_;
  std::vector<bool> stack_;
  bool pending_value_ = false;
};

inline void PrintHeader(const char* title, const char* paper_artifact) {
  std::printf("============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_artifact);
  std::printf("============================================================\n");
}

}  // namespace tiger

#endif  // BENCH_BENCH_UTIL_H_
