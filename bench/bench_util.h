// Shared helpers for the experiment benches.
//
// Every bench binary accepts:
//   --quick            scaled-down run (fewer steps, smaller system) for CI
//   --seed=N           RNG seed (default 1)
//   --max-streams=N    override the ramp target
//   --csv              also dump rows as CSV after the table

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace tiger {

struct BenchArgs {
  bool quick = false;
  bool csv = false;
  uint64_t seed = 1;
  int max_streams = -1;  // -1: bench default.

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(a, "--csv") == 0) {
        args.csv = true;
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        args.seed = std::strtoull(a + 7, nullptr, 10);
      } else if (std::strncmp(a, "--max-streams=", 14) == 0) {
        args.max_streams = std::atoi(a + 14);
      } else if (std::strcmp(a, "--help") == 0) {
        std::fprintf(stderr,
                     "usage: %s [--quick] [--csv] [--seed=N] [--max-streams=N]\n", argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag %s (try --help)\n", a);
        std::exit(1);
      }
    }
    return args;
  }
};

inline void PrintHeader(const char* title, const char* paper_artifact) {
  std::printf("============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_artifact);
  std::printf("============================================================\n");
}

}  // namespace tiger

#endif  // BENCH_BENCH_UTIL_H_
