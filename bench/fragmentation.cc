// Network-schedule fragmentation (§3.2).
//
// "Fragmentation can become fairly severe if viewers are started at
// arbitrary points. We have found that fragmentation is reduced to an
// acceptable level when viewers are forced to start at times that are
// integral multiples of the block play time divided by the decluster
// factor."
//
// This bench drives the two-dimensional network schedule with a churning
// mixed-bitrate population under two start-time policies — arbitrary
// (millisecond granularity) and quantized (block_play_time / decluster) —
// at increasing offered load, and reports achieved utilization and the
// admission failure rate. The quantized policy keeps entry edges aligned, so
// free bandwidth never splinters into "slightly too short" gaps like the one
// between viewers 4 and 2 in the paper's Figure 4.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/schedule/network_schedule.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

struct PolicyResult {
  double mean_utilization = 0;
  double rejection_rate = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;
};

// Simulates Poisson-ish arrivals with uniform lifetimes on one schedule.
PolicyResult RunChurn(bool quantized, double offered_load, int rounds, uint64_t seed) {
  const Duration play = Duration::Seconds(1);
  const int num_cubs = 14;
  const int decluster = 4;
  const int64_t capacity = 155000000;
  NetworkSchedule schedule(play, num_cubs, capacity);
  Rng rng(seed);

  const std::vector<int64_t> bitrates = {Megabits(1), Megabits(2), Megabits(3), Megabits(6)};
  const Duration quantum = play / decluster;
  const Duration arbitrary_step = Duration::Millis(1);

  struct Live {
    NetworkSchedule::EntryId id;
    int64_t bps;
    int expires_round;
  };
  std::vector<Live> live;
  PolicyResult result;
  double utilization_sum = 0;
  int utilization_samples = 0;
  uint64_t next_instance = 1;

  // Target concurrent population for the offered load: the schedule's total
  // bandwidth-time area is capacity x (num_cubs x play); each stream uses
  // bps x play of it.
  const double mean_bps = 3.0e6;
  const double target_streams =
      offered_load * static_cast<double>(capacity) * num_cubs / mean_bps;
  const int mean_lifetime_rounds = 200;

  for (int round = 0; round < rounds; ++round) {
    // Departures.
    for (auto it = live.begin(); it != live.end();) {
      if (it->expires_round <= round) {
        schedule.Remove(it->id);
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    // Arrivals to hold the offered population.
    const double arrivals_per_round = target_streams / mean_lifetime_rounds;
    int arrivals = static_cast<int>(arrivals_per_round);
    if (rng.UniformDouble(0, 1) < arrivals_per_round - arrivals) {
      ++arrivals;
    }
    for (int a = 0; a < arrivals; ++a) {
      const int64_t bps = bitrates[rng.PickIndex(bitrates.size())];
      // The viewer wants to start "now": scan forward from a random desired
      // offset for up to one block play time, as the insertion logic does.
      const Duration desired =
          Duration::Micros(rng.UniformInt(0, schedule.length().micros() - 1));
      const Duration step = quantized ? quantum : arbitrary_step;
      bool admitted = false;
      const int64_t scan_steps = play.micros() / step.micros();
      for (int64_t s = 0; s <= scan_steps; ++s) {
        Duration offset = desired + step * s;
        if (quantized) {
          // Round up to the quantum grid first.
          int64_t q = (desired.micros() + quantum.micros() - 1) / quantum.micros();
          offset = quantum * (q + s);
        }
        offset = schedule.WrapOffset(offset);
        if (schedule.CanInsert(offset, bps)) {
          NetworkSchedule::EntryId id = schedule.Insert(
              offset, bps, false, ViewerId(static_cast<uint32_t>(next_instance)),
              PlayInstanceId(next_instance));
          next_instance++;
          int lifetime = static_cast<int>(
              rng.UniformInt(mean_lifetime_rounds / 2, 3 * mean_lifetime_rounds / 2));
          live.push_back(Live{id, bps, round + lifetime});
          admitted = true;
          break;
        }
      }
      if (admitted) {
        result.admitted++;
      } else {
        result.rejected++;
      }
    }
    if (round > rounds / 4) {  // Skip warm-up.
      utilization_sum += schedule.MeanUtilization();
      utilization_samples++;
    }
  }
  result.mean_utilization = utilization_samples == 0 ? 0 : utilization_sum / utilization_samples;
  const int64_t attempts = result.admitted + result.rejected;
  result.rejection_rate =
      attempts == 0 ? 0 : static_cast<double>(result.rejected) / static_cast<double>(attempts);
  return result;
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("fragmentation: arbitrary vs quantized start times",
              "§3.2 fragmentation analysis of Bolosky et al., SOSP 1997");

  const int rounds = args.quick ? 400 : 2000;
  TextTable table({"offered_load", "policy", "mean_util%", "rejection%", "admitted"});
  for (double load : {0.70, 0.80, 0.90, 0.95, 1.00}) {
    for (bool quantized : {false, true}) {
      PolicyResult r = RunChurn(quantized, load, rounds, args.seed + (quantized ? 1 : 0));
      table.Row()
          .Double(load, 2)
          .Str(quantized ? "quantized" : "arbitrary")
          .Percent(r.mean_utilization)
          .Percent(r.rejection_rate)
          .Int(r.admitted);
    }
  }
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }
  std::printf("\npaper: quantized starts (block_play/decluster) reduce fragmentation to an\n"
              "acceptable level; arbitrary starts leave unusable gaps, visible here as a\n"
              "higher rejection rate (or lower achieved utilization) at the same offered "
              "load.\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
