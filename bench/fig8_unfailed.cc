// Figure 8: Tiger loads with no cubs failed.
//
// Ramps a 14-cub / 56-disk / 2 Mbit/s system from 0 to 602 streams in steps
// of 30 (final step of 2), settling >= 50 s per step, and reports mean cub
// CPU, controller CPU, disk utilization, and the control traffic one cub
// sends to all others. Expected shape (§5): cub load linear in streams,
// controller load flat, control traffic linear and at most ~10-21 KB/s.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/client/ramp_experiment.h"
#include "src/client/testbed.h"
#include "src/stats/table.h"

namespace tiger {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("fig8_unfailed: component loads vs stream count, no failures",
              "Figure 8 of Bolosky et al., SOSP 1997");

  TigerConfig config;  // Paper testbed defaults.
  RampOptions options;
  if (args.quick) {
    options.max_streams = 120;
    options.step_interval = Duration::Seconds(20);
    options.measure_window = Duration::Seconds(10);
  }
  if (args.max_streams > 0) {
    options.max_streams = args.max_streams;
  }
  options.probe_cub = CubId(0);

  Testbed testbed(config, args.seed);
  testbed.AddContent(64, Duration::Seconds(3600));
  std::printf("system: %d cubs x %d disks, %lld slots, block %.2f MB, decluster %d\n\n",
              config.shape.num_cubs, config.shape.disks_per_cub,
              static_cast<long long>(testbed.system().geometry().slot_count()),
              static_cast<double>(config.block_bytes) / (1024 * 1024),
              config.shape.decluster_factor);

  RampResult result = RunRampExperiment(testbed, options);

  TextTable table({"streams", "cub_cpu%", "ctrl_cpu%", "disk_util%", "ctrl_traffic_KB/s"});
  for (const RampStepResult& row : result.steps) {
    table.Row()
        .Int(row.target_streams)
        .Percent(row.mean_cub_cpu)
        .Percent(row.controller_cpu, 2)
        .Percent(row.mean_disk_util)
        .Double(row.probe_control_bps / 1024.0, 2);
  }
  table.Print();
  if (args.csv) {
    std::printf("\n%s", table.ToCsv().c_str());
  }

  const auto& cubs = result.cub_totals;
  const auto& clients = result.client_totals;
  std::printf("\nreliability: blocks sent %lld, server-missed %lld, client-lost %lld\n",
              static_cast<long long>(cubs.blocks_sent),
              static_cast<long long>(cubs.server_missed_blocks),
              static_cast<long long>(clients.lost_blocks));
  if (cubs.server_missed_blocks + clients.lost_blocks > 0) {
    std::printf("overall loss rate: 1 in %lld\n",
                static_cast<long long>(cubs.blocks_sent /
                                       (cubs.server_missed_blocks + clients.lost_blocks)));
  } else {
    std::printf("overall loss rate: 0 (no losses)\n");
  }
  std::printf("paper: cub load linear in streams; controller flat; control "
              "traffic < 21 KB/s at full load\n");
  return 0;
}

}  // namespace
}  // namespace tiger

int main(int argc, char** argv) { return tiger::Main(argc, argv); }
