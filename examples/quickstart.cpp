// Quickstart: bring up a small Tiger, play one file, watch the blocks land.
//
// Builds a 4-cub / 4-disk system (decluster factor 2), stores one 15-second
// 2 Mbit/s file, starts a viewer, and prints the delivery timeline plus the
// schedule-protocol counters that made it happen.

#include <cstdio>

#include "src/client/testbed.h"

int main() {
  using namespace tiger;

  TigerConfig config;
  config.shape = SystemShape{/*num_cubs=*/4, /*disks_per_cub=*/1, /*decluster_factor=*/2};

  Testbed testbed(config, /*seed=*/2024);
  testbed.system().EnableOracle();

  std::printf("Tiger quickstart: %d cubs, %d disks, %lld schedule slots\n",
              config.shape.num_cubs, config.shape.TotalDisks(),
              static_cast<long long>(testbed.system().geometry().slot_count()));
  std::printf("block play time %s, effective block service time %s\n\n",
              config.block_play_time.ToString().c_str(),
              testbed.system().geometry().effective_block_service_time().ToString().c_str());

  testbed.AddContent(/*count=*/1, /*file_duration=*/Duration::Seconds(15));
  testbed.Start();

  ViewerClient& viewer = testbed.AddViewer(FileId(0));
  testbed.RunFor(Duration::Seconds(8));

  std::printf("mid-play view sizes (each cub holds only its window of the hallucinated\n"
              "global schedule — bounded regardless of system size):\n");
  for (int c = 0; c < config.shape.num_cubs; ++c) {
    Cub& cub = testbed.system().cub(CubId(static_cast<uint32_t>(c)));
    std::printf("  cub %d: %zu schedule entries in view\n", c, cub.view().entry_count());
  }
  std::printf("\n");
  testbed.RunFor(Duration::Seconds(17));

  const ViewerClient::Stats& stats = viewer.stats();
  std::printf("viewer results:\n");
  std::printf("  startup latency : %.3f s (request to last byte of first block)\n",
              viewer.startup_latency().Mean());
  std::printf("  blocks received : %lld of 15\n", static_cast<long long>(stats.blocks_complete));
  std::printf("  late blocks     : %lld\n", static_cast<long long>(stats.late_blocks));
  std::printf("  lost blocks     : %lld\n", static_cast<long long>(stats.lost_blocks));

  Cub::Counters cubs = testbed.system().TotalCubCounters();
  std::printf("\nschedule protocol activity:\n");
  std::printf("  slot insertions        : %lld\n", static_cast<long long>(cubs.inserts));
  std::printf("  viewer states received : %lld (each block's state visits two cubs)\n",
              static_cast<long long>(cubs.records_received));
  std::printf("  blocks sent            : %lld\n", static_cast<long long>(cubs.blocks_sent));
  std::printf("  schedule conflicts     : %d (must be 0)\n",
              testbed.system().oracle()->conflict_count());

  return 0;
}
