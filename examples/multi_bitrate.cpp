// Multiple-bitrate Tiger: mixed 1/2/4 Mbit/s streams through the
// two-dimensional network schedule (§3.2) with two-phase reserve/commit
// insertion (§4.2).

#include <cstdio>
#include <memory>
#include <vector>

#include "src/client/viewer.h"
#include "src/core/multirate_system.h"

int main() {
  using namespace tiger;

  TigerConfig config;
  config.shape = SystemShape{6, 2, 4};
  config.block_bytes = 1 << 19;            // Blocks up to 0.5 MB (4 Mbit/s).
  config.max_stream_bps = Megabits(4);
  config.cub_nic_bps = Megabits(30);       // Small NIC so admission matters.

  MultirateSystem system(config, /*seed=*/5);
  std::printf("multiple-bitrate Tiger: %d cubs, NIC %lld Mbit/s, start quantum %s\n\n",
              config.shape.num_cubs, static_cast<long long>(config.cub_nic_bps / 1000000),
              (config.block_play_time / config.shape.decluster_factor).ToString().c_str());

  std::vector<FileId> files;
  const int64_t rates[] = {Megabits(1), Megabits(2), Megabits(4)};
  for (int i = 0; i < 12; ++i) {
    FileId file = system
                      .AddFile("title" + std::to_string(i), rates[i % 3],
                               Duration::Seconds(60))
                      .value();
    const FileInfo& info = system.catalog().Get(file);
    if (i < 3) {
      std::printf("  %-8s %lld Mbit/s -> %lld KB blocks (proportional, no internal "
                  "fragmentation)\n",
                  info.name.c_str(), static_cast<long long>(info.bitrate_bps / 1000000),
                  static_cast<long long>(info.allocated_bytes_per_block / 1024));
    }
    files.push_back(file);
  }
  system.Start();

  std::vector<std::unique_ptr<ViewerClient>> viewers;
  for (size_t i = 0; i < files.size(); ++i) {
    auto viewer = std::make_unique<ViewerClient>(
        &system.sim(), ViewerId(static_cast<uint32_t>(i + 1)), &system.config(),
        &system.catalog(), &system.net());
    viewer->SetAddressBook(&system.addresses());
    ViewerClient* raw = viewer.get();
    FileId file = files[i];
    viewers.push_back(std::move(viewer));
    system.sim().ScheduleAfter(Duration::Millis(static_cast<int64_t>(i) * 700),
                               [raw, file] { raw->RequestPlay(file); });
  }
  system.sim().RunFor(Duration::Seconds(40));

  std::printf("\nper-cub network-schedule views mid-run (peak committed bandwidth):\n");
  for (int c = 0; c < system.cub_count(); ++c) {
    const NetworkSchedule& view = system.cub(CubId(static_cast<uint32_t>(c))).schedule_view();
    std::printf("  cub %d: %zu entries, peak %.1f of %.0f Mbit/s\n", c, view.entry_count(),
                static_cast<double>(view.PeakLoad(Duration::Zero(), view.length())) / 1e6,
                static_cast<double>(config.cub_nic_bps) / 1e6);
  }

  system.sim().RunFor(Duration::Seconds(40));

  std::printf("\nresults:\n");
  int64_t delivered = 0;
  int64_t lost = 0;
  int started = 0;
  for (const auto& viewer : viewers) {
    delivered += viewer->stats().blocks_complete;
    lost += viewer->stats().lost_blocks;
    started += static_cast<int>(viewer->stats().plays_started);
  }
  std::printf("  plays started    : %d of %zu\n", started, viewers.size());
  std::printf("  blocks delivered : %lld, lost %lld\n", static_cast<long long>(delivered),
              static_cast<long long>(lost));

  MultirateCub::Counters totals = system.TotalCubCounters();
  std::printf("  two-phase inserts: %lld committed, %lld aborted, %lld rejected by "
              "successor\n",
              static_cast<long long>(totals.inserts_committed),
              static_cast<long long>(totals.inserts_aborted),
              static_cast<long long>(totals.reserve_rejections));
  return 0;
}
