// Multi-process ring of cubs over real loopback TCP.
//
// Forks one OS process per cub. Each process hosts the *messaging layer* of
// a cub: it accepts a TCP connection from its predecessor, connects to its
// successor, and forwards viewer-state batches around the ring exactly as
// the schedule protocol does — decode the wire frame, advance each record to
// the next block (position+1, sequence+1, due+block_play_time), re-encode,
// forward. A deschedule record is injected mid-run and chases its stream
// around the ring.
//
// This demonstrates the "networking boilerplate" of a real deployment: the
// same 100-byte wire records, framed TCP channels, and in-order delivery the
// simulated Network models. The full protocol brain runs on the
// deterministic simulator (see examples/quickstart.cpp); this demo proves
// the wire path carries it.

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/core/wire.h"
#include "src/net/tcp_transport.h"

namespace {

using namespace tiger;

constexpr int kCubs = 4;
constexpr int kLaps = 250;     // Each record circles the ring this many times.
constexpr int kStreams = 32;   // Viewer states circulating.

// One hop: receive a frame, process, forward. Returns false when done.
int RunCub(int index, uint16_t my_port, uint16_t successor_port) {
  TcpListener listener(my_port);
  if (!listener.valid()) {
    std::fprintf(stderr, "cub %d: cannot listen on %u\n", index, my_port);
    return 1;
  }
  TcpSocket to_successor = TcpConnect(successor_port);
  TcpSocket from_predecessor = listener.Accept();
  if (!to_successor.valid() || !from_predecessor.valid()) {
    std::fprintf(stderr, "cub %d: ring wiring failed\n", index);
    return 1;
  }

  int64_t records_forwarded = 0;
  int64_t deschedules_seen = 0;
  uint64_t killed_instance = 0;
  while (true) {
    auto frame = from_predecessor.RecvFrame();
    if (!frame.has_value()) {
      break;  // Predecessor closed: ring shutting down.
    }
    std::shared_ptr<TigerMessage> message = DecodeMessage(*frame);
    if (message == nullptr) {
      std::fprintf(stderr, "cub %d: corrupt frame\n", index);
      return 1;
    }
    if (message->kind == MsgKind::kDeschedule) {
      // Remember the kill and chase it onward (§4.1.2).
      const auto& deschedule = static_cast<const DescheduleMsg&>(*message);
      killed_instance = deschedule.record.instance.value();
      deschedules_seen++;
      if (!to_successor.SendFrame(*frame)) {
        break;
      }
      continue;
    }
    if (message->kind != MsgKind::kViewerStateBatch) {
      continue;
    }
    const auto& batch = static_cast<const ViewerStateBatchMsg&>(*message);
    ViewerStateBatchMsg out;
    bool finished = false;
    for (const ViewerStateRecord& record : batch.Decode()) {
      if (record.instance.value() == killed_instance) {
        continue;  // Idempotent kill: drop the dead stream's states.
      }
      if (record.sequence >= kLaps * kCubs) {
        finished = true;
        continue;
      }
      ViewerStateRecord next = record;
      next.position++;
      next.sequence++;
      next.due = record.due + Duration::Seconds(1);
      out.Add(next);
      records_forwarded++;
    }
    if (!out.wire_records.empty()) {
      auto encoded = EncodeMessage(out);
      if (!to_successor.SendFrame(encoded)) {
        break;
      }
    }
    if (finished && out.wire_records.empty()) {
      break;
    }
  }
  std::printf("cub %d: forwarded %lld viewer states, saw %lld deschedule(s)\n", index,
              static_cast<long long>(records_forwarded),
              static_cast<long long>(deschedules_seen));
  return 0;
}

}  // namespace

int main() {
  using namespace tiger;

  uint16_t base_port = static_cast<uint16_t>(23800 + (getpid() % 500));
  std::printf("forking %d cub processes on loopback ports %u..%u\n", kCubs, base_port,
              base_port + kCubs - 1);
  std::fflush(stdout);  // Keep the buffered line out of the children.

  std::vector<pid_t> children;
  for (int i = 1; i < kCubs; ++i) {
    pid_t pid = fork();
    if (pid == 0) {
      std::exit(RunCub(i, static_cast<uint16_t>(base_port + i),
                       static_cast<uint16_t>(base_port + (i + 1) % kCubs)));
    }
    children.push_back(pid);
  }

  // This process is cub 0: it also seeds the ring and injects a deschedule.
  TcpListener listener(base_port);
  TcpSocket to_successor = TcpConnect(static_cast<uint16_t>(base_port + 1));
  TcpSocket from_predecessor = listener.Accept();
  if (!to_successor.valid() || !from_predecessor.valid()) {
    std::fprintf(stderr, "cub 0: ring wiring failed\n");
    return 1;
  }

  ViewerStateBatchMsg seed;
  for (int s = 0; s < kStreams; ++s) {
    ViewerStateRecord record;
    record.viewer = ViewerId(static_cast<uint32_t>(s));
    record.instance = PlayInstanceId(static_cast<uint64_t>(s + 1));
    record.file = FileId(0);
    record.position = s;
    record.slot = SlotId(static_cast<uint32_t>(s));
    record.sequence = 0;
    record.bitrate_bps = 2000000;
    record.due = TimePoint::FromMicros(1000000);
    seed.Add(record);
  }
  auto t0 = std::chrono::steady_clock::now();
  to_successor.SendFrame(EncodeMessage(seed));

  int64_t laps_done = 0;
  int64_t records_seen = 0;
  bool injected_kill = false;
  while (true) {
    auto frame = from_predecessor.RecvFrame();
    if (!frame.has_value()) {
      break;
    }
    auto message = DecodeMessage(*frame);
    if (message == nullptr || message->kind != MsgKind::kViewerStateBatch) {
      continue;
    }
    const auto& batch = static_cast<const ViewerStateBatchMsg&>(*message);
    laps_done++;
    records_seen += static_cast<int64_t>(batch.wire_records.size());
    if (!injected_kill && laps_done == kLaps / 2) {
      // Stop stream 7: the deschedule chases its states around the ring.
      DescheduleMsg kill;
      kill.record = DescheduleRecord{ViewerId(7), PlayInstanceId(8), SlotId(7)};
      to_successor.SendFrame(EncodeMessage(kill));
      injected_kill = true;
    }
    ViewerStateBatchMsg out;
    bool finished = true;
    for (const ViewerStateRecord& record : batch.Decode()) {
      if (injected_kill && record.instance.value() == 8) {
        continue;
      }
      if (record.sequence >= kLaps * kCubs) {
        continue;
      }
      finished = false;
      ViewerStateRecord next = record;
      next.position++;
      next.sequence++;
      next.due = record.due + Duration::Seconds(1);
      out.Add(next);
    }
    if (finished) {
      break;
    }
    to_successor.SendFrame(EncodeMessage(out));
  }
  auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  to_successor.Close();  // Cascades shutdown around the ring.

  int status = 0;
  for (pid_t pid : children) {
    waitpid(pid, &status, 0);
  }
  const int64_t hops = records_seen * kCubs;
  std::printf("\nring results (real TCP, %d processes):\n", kCubs);
  std::printf("  laps completed       : %lld\n", static_cast<long long>(laps_done));
  std::printf("  record-hops          : ~%lld in %.2f s (%.0f hops/s, ~%.0f records/s/link)\n",
              static_cast<long long>(hops), elapsed, hops / elapsed,
              static_cast<double>(records_seen) / elapsed);
  std::printf("  descheduled stream 7 : states stopped circulating after the kill\n");
  std::printf("\nThe same 100-byte viewer states, length-prefixed frames and ordered TCP\n"
              "channels the paper's cubs used — exercised across real OS processes.\n");
  return 0;
}
