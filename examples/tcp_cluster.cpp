// A live Tiger cluster: the real protocol over real sockets.
//
// Runs the unmodified Cub, Controller and ViewerClient actors — the same
// classes the deterministic simulation tests — in six separate threads
// (4 cubs + controller + client), each with its own wall-clock executor,
// talking only through wire-encoded frames on loopback TCP connections.
// A viewer requests a 12-second file and the cluster streams it block by
// block: slot-ownership insertion, viewer-state propagation, paced delivery.
//
// Expected: every block delivered, none lost, and a startup latency around
// the same ~1.8 s the simulated system (and the paper's testbed) shows.

#include <cstdio>

#include "src/client/tcp_cluster.h"

int main() {
  using namespace tiger;

  TcpClusterOptions options;
  options.cubs = 4;
  options.file_blocks = 12;
  options.speedup = 2.0;  // 2 simulated seconds per wall second.
  options.run_time = Duration::Seconds(18);

  std::printf("starting a live Tiger: 4 cubs + controller + 1 viewer, each in its own\n");
  std::printf("thread with its own clock, connected by real loopback TCP sockets...\n\n");
  TcpClusterResult result = RunTcpCluster(options);

  std::printf("results:\n");
  std::printf("  play completed    : %s\n", result.plays_completed == 1 ? "yes" : "NO");
  std::printf("  blocks delivered  : %lld of %d\n",
              static_cast<long long>(result.blocks_complete), options.file_blocks);
  std::printf("  lost / late       : %lld / %lld\n", static_cast<long long>(result.lost_blocks),
              static_cast<long long>(result.late_blocks));
  std::printf("  startup latency   : %.2f s (simulated floor, and the paper's, is ~1.8 s)\n",
              result.startup_latency_s);
  std::printf("  TCP frames        : %lld (viewer states, heartbeats, starts, blocks)\n",
              static_cast<long long>(result.frames_on_the_wire));
  std::printf("  schedule inserts  : %lld, viewer states received %lld\n",
              static_cast<long long>(result.cub_inserts),
              static_cast<long long>(result.records_received));
  if (!result.ok) {
    std::printf("\nFAILURE: see counters above.\n");
    return 1;
  }

  std::printf("\nnow the failure story, live: same cluster, but cub 2 loses power at 8 s...\n\n");
  TcpClusterOptions failure = options;
  failure.file_blocks = 24;
  failure.run_time = Duration::Seconds(32);
  failure.speedup = 4.0;
  failure.fail_cub = 2;
  failure.fail_at = Duration::Seconds(8);
  TcpClusterResult after = RunTcpCluster(failure);

  std::printf("results with a power cut:\n");
  std::printf("  play completed     : %s\n", after.plays_completed == 1 ? "yes" : "NO");
  std::printf("  blocks delivered   : %lld of %d (%lld lost in the detection window)\n",
              static_cast<long long>(after.blocks_complete), failure.file_blocks,
              static_cast<long long>(after.lost_blocks));
  std::printf("  deadman detections : %lld, takeovers %lld\n",
              static_cast<long long>(after.failures_detected),
              static_cast<long long>(after.takeovers));
  std::printf("  mirror fragments   : %lld delivered over TCP from the declustered copies\n",
              static_cast<long long>(after.fragments_received));
  std::printf("\n%s\n", after.ok
                            ? "The coherent hallucination survives contact with real sockets —\n"
                              "and with a real power cut."
                            : "FAILURE: see counters above.");
  return after.ok ? 0 : 1;
}
