// Video-on-demand with a power failure.
//
// Runs the paper's 14-cub / 56-disk configuration under 200 streams, cuts
// power to one cub mid-run, and reports how the deadman protocol and
// declustered mirroring keep the streams alive: the loss window, the mirror
// fragments served, and the control-traffic increase at the mirroring cubs.

#include <algorithm>
#include <cstdio>

#include "src/client/testbed.h"

int main() {
  using namespace tiger;

  TigerConfig config;  // 14 cubs x 4 disks, decluster 4 — the §5 testbed.
  Testbed testbed(config, /*seed=*/7);
  testbed.system().EnableOracle();
  testbed.AddContent(/*count=*/32, /*file_duration=*/Duration::Seconds(600));
  testbed.Start();

  std::printf("ramping to 200 streams...\n");
  testbed.AddLoopingViewers(200, /*stagger=*/Duration::Seconds(15));
  testbed.RunFor(Duration::Seconds(30));
  std::printf("  %lld streams active, %lld blocks delivered so far\n",
              static_cast<long long>(testbed.ActiveViewerCount()),
              static_cast<long long>(testbed.TotalClientStats().blocks_complete));

  const CubId victim(9);
  const TimePoint cut = testbed.sim().Now();
  std::printf("\ncutting power to cub %u at t=%.1fs...\n", victim.value(), cut.seconds());
  testbed.system().FailCubNow(victim);
  testbed.RunFor(Duration::Seconds(40));

  ViewerClient::Stats stats = testbed.TotalClientStats();
  TimePoint earliest = TimePoint::Max();
  TimePoint latest = TimePoint::Zero();
  for (const auto& viewer : testbed.viewers()) {
    for (TimePoint t : viewer->loss_times()) {
      earliest = std::min(earliest, t);
      latest = std::max(latest, t);
    }
  }

  std::printf("\nafter the failure:\n");
  std::printf("  streams still active      : %lld of 200\n",
              static_cast<long long>(testbed.ActiveViewerCount()));
  std::printf("  blocks lost (all clients) : %lld\n", static_cast<long long>(stats.lost_blocks));
  if (stats.lost_blocks > 0) {
    std::printf("  loss window               : %.1fs to %.1fs after the cut (gap %.1fs)\n",
                (earliest - cut).seconds(), (latest - cut).seconds(),
                (latest - earliest).seconds());
  }
  std::printf("  mirror fragments delivered: %lld (decluster factor %d, %lld blocks' worth)\n",
              static_cast<long long>(stats.fragments_received), config.shape.decluster_factor,
              static_cast<long long>(stats.fragments_received / config.shape.decluster_factor));

  Cub::Counters cubs = testbed.system().TotalCubCounters();
  std::printf("  mirror takeovers          : %lld\n", static_cast<long long>(cubs.takeovers));
  std::printf("  failures detected         : %lld (deadman protocol)\n",
              static_cast<long long>(cubs.failures_detected));
  std::printf("  schedule conflicts        : %d (must be 0)\n",
              testbed.system().oracle()->conflict_count());

  TimePoint b = testbed.sim().Now();
  TimePoint a = b - Duration::Seconds(20);
  CubId mirror_cub = CubId(10);  // First living successor of the victim.
  CubId distant_cub = CubId(2);
  std::printf("\ncontrol traffic (last 20 s):\n");
  std::printf("  mirroring cub %u : %.1f KB/s (carries mirror viewer states)\n",
              mirror_cub.value(),
              testbed.system().CubControlTrafficBps(mirror_cub, a, b) / 1024.0);
  std::printf("  distant cub %u   : %.1f KB/s\n", distant_cub.value(),
              testbed.system().CubControlTrafficBps(distant_cub, a, b) / 1024.0);
  return 0;
}
