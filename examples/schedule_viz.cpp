// ASCII rendering of the Tiger schedules — the paper's Figures 3 and 4.
//
// Figure 3 (disk schedule): a strip of slots with the per-disk play pointers
// marching through it one block play time apart.
// Figure 4 (network schedule): time x bandwidth, entries stacked by bitrate,
// with the fragmentation gap visible.

#include <cstdio>
#include <string>
#include <vector>

#include "src/client/testbed.h"
#include "src/schedule/network_schedule.h"

namespace {

using namespace tiger;

void RenderDiskSchedule() {
  std::printf("=== Figure 3: the disk schedule (a 4-cub, 4-disk Tiger) ===\n\n");
  TigerConfig config;
  config.shape = SystemShape{4, 1, 2};
  Testbed testbed(config, 11);
  testbed.system().EnableOracle();
  testbed.AddContent(4, Duration::Seconds(120));
  testbed.Start();
  for (int i = 0; i < 9; ++i) {
    testbed.AddViewer(FileId(static_cast<uint32_t>(i % 4)));
  }
  testbed.RunFor(Duration::Seconds(12));

  const ScheduleGeometry& geometry = testbed.system().geometry();
  const TimePoint now = testbed.sim().Now();
  const int64_t slots = geometry.slot_count();

  // Slot occupancy, reconstructed from cub views (each viewer appears at the
  // cubs near its current play point; the hallucinated global schedule is
  // assembled here only for display).
  std::vector<char> occupancy(static_cast<size_t>(slots), '.');
  for (int c = 0; c < config.shape.num_cubs; ++c) {
    const_cast<ScheduleView&>(testbed.system().cub(CubId(static_cast<uint32_t>(c))).view())
        .ForEachEntry([&](ScheduleEntry& entry) {
          if (!entry.record.is_mirror()) {
            occupancy[entry.record.slot.value()] =
                static_cast<char>('0' + entry.record.viewer.value() % 10);
          }
        });
  }
  std::printf("slots (0..%lld), digit = viewer id occupying the slot:\n  ",
              static_cast<long long>(slots - 1));
  for (int64_t s = 0; s < slots; ++s) {
    std::printf("%c", occupancy[static_cast<size_t>(s)]);
  }
  std::printf("\n\ndisk pointers (one block play time apart, wrapping):\n");
  for (int d = 0; d < geometry.total_disks(); ++d) {
    Duration pos = geometry.DiskPointer(DiskId(static_cast<uint32_t>(d)), now);
    int64_t slot = geometry.SlotAtOffset(pos).value();
    std::string strip(static_cast<size_t>(slots), ' ');
    strip[static_cast<size_t>(slot)] = 'v';
    std::printf("  disk %d: %s (slot %lld)\n", d, strip.c_str(),
                static_cast<long long>(slot));
  }
  std::printf("\n");
}

void RenderNetworkSchedule() {
  std::printf("=== Figure 4: the network schedule (3 cubs, 6 Mbit/s NICs) ===\n\n");
  // Recreate the paper's example: viewers of 1-3 Mbit/s at staggered offsets,
  // including the unusable gap between viewer 4's end and viewer 2's start.
  NetworkSchedule schedule(Duration::Seconds(1), 3, Megabits(6));
  struct Entry {
    const char* name;
    int64_t start_ms;
    int64_t mbps;
  };
  const Entry entries[] = {
      {"viewer 4", 0, 2},    {"viewer 1", 300, 2},  {"viewer 3", 650, 1},
      {"viewer 0", 1125, 3}, {"viewer 2", 1900, 2}, {"viewer 5", 2400, 1},
  };
  uint64_t next = 1;
  for (const Entry& e : entries) {
    schedule.Insert(Duration::Millis(e.start_ms), Megabits(e.mbps), false,
                    ViewerId(static_cast<uint32_t>(next)), PlayInstanceId(next));
    next++;
  }

  // Render the load profile: rows = Mbit levels (top = 6), cols = 100 ms.
  const int cols = static_cast<int>(schedule.length().micros() / 100000);
  std::printf("bandwidth\n");
  for (int level = 6; level >= 1; --level) {
    std::printf("  %d Mbit |", level);
    for (int col = 0; col < cols; ++col) {
      int64_t load = schedule.LoadAt(Duration::Millis(col * 100 + 50));
      std::printf("%c", load >= level * 1000000 ? '#' : ' ');
    }
    std::printf("|\n");
  }
  std::printf("         +");
  for (int col = 0; col < cols; ++col) {
    std::printf("-");
  }
  std::printf("+\n          0s        1s        2s        (3 cubs x 1 s, wraps)\n\n");

  for (const Entry& e : entries) {
    std::printf("  %-9s %lld Mbit/s at %.2fs\n", e.name, static_cast<long long>(e.mbps),
                e.start_ms / 1000.0);
  }
  std::printf("\nfragmentation: a new 1-block-play-time entry cannot start in (0.9s, 1.0s)\n");
  for (int64_t ms : {910, 950, 990}) {
    std::printf("  CanInsert(%.2fs, 2 Mbit/s) = %s\n", ms / 1000.0,
                schedule.CanInsert(Duration::Millis(ms), Megabits(2)) ? "yes" : "no");
  }
  std::printf("  -> \"the gap in the schedule is slightly too short\" (§3.2)\n");
}

}  // namespace

int main() {
  RenderDiskSchedule();
  RenderNetworkSchedule();
  return 0;
}
