// Restriping: grow a Tiger from 4 to 6 cubs (§2.2).
//
// Computes the block-move plan for the new cub-minor layout, verifies the
// layout invariants before and after, and demonstrates the paper's claim
// that restripe time depends on per-cub size and speed, not on system size.

#include <cstdio>

#include "src/layout/restriper.h"

int main() {
  using namespace tiger;

  const Duration play = Duration::Seconds(1);
  const int64_t block_bytes = 262144;
  Catalog catalog(play, block_bytes, /*single_bitrate=*/true);
  for (int i = 0; i < 8; ++i) {
    Result<FileId> file = catalog.AddFile("movie" + std::to_string(i), Megabits(2),
                                          Duration::Seconds(1800),
                                          DiskId(static_cast<uint32_t>(i * 3 % 16)));
    if (!file.ok()) {
      std::fprintf(stderr, "AddFile failed: %s\n", file.status().message().c_str());
      return 1;
    }
  }

  SystemShape old_shape{4, 4, 4};
  SystemShape new_shape{6, 4, 4};
  StripeLayout old_layout(old_shape);
  StripeLayout new_layout(new_shape);

  std::printf("restriping %zu files (%lld blocks) from %d to %d cubs\n", catalog.size(),
              static_cast<long long>(catalog.TotalPrimaryBytes() / block_bytes),
              old_shape.num_cubs, new_shape.num_cubs);

  // Layout invariants hold in both shapes for a sample of blocks.
  for (const FileInfo& file : catalog.files()) {
    for (int64_t block = 0; block < file.block_count; block += 97) {
      for (const StripeLayout* layout : {&old_layout, &new_layout}) {
        DiskId primary = layout->PrimaryDisk(file, block);
        for (int j = 0; j < layout->shape().decluster_factor; ++j) {
          BlockLocation fragment = layout->SecondaryLocation(file, block, j);
          if (fragment.disk == primary) {
            std::fprintf(stderr, "INVARIANT VIOLATION: fragment on its own primary disk\n");
            return 1;
          }
        }
      }
    }
  }
  std::printf("layout invariants verified (mirror fragments never share their primary's "
              "disk)\n\n");

  RestripePlan plan = PlanRestripe(catalog, old_layout, new_layout);
  std::printf("move plan:\n");
  std::printf("  blocks/fragments to move : %zu\n", plan.moves.size());
  std::printf("  bytes to move            : %.2f GB of %.2f GB stored (%.1f%%)\n",
              static_cast<double>(plan.total_bytes_moved) / 1e9,
              static_cast<double>(plan.total_bytes_stored) / 1e9,
              plan.FractionMoved() * 100.0);
  std::printf("  busiest disk sends       : %.2f GB\n",
              static_cast<double>(plan.max_bytes_out_per_disk) / 1e9);
  std::printf("  busiest disk receives    : %.2f GB\n",
              static_cast<double>(plan.max_bytes_in_per_disk) / 1e9);

  const int64_t disk_rate = 5800000;    // Outer-zone transfer rate, B/s.
  const int64_t nic_rate = 155000000 / 8;
  double seconds = EstimateRestripeSeconds(plan, new_shape, disk_rate, nic_rate);
  std::printf("\nestimated restripe time: %.0f s (disk %.1f MB/s, NIC %.1f MB/s per cub)\n",
              seconds, disk_rate / 1e6, nic_rate / 1e6);

  // The paper's claim: the time depends on cub size/speed, not system size.
  // Doubling the system with the same per-cub content changes it little.
  Catalog big_catalog(play, block_bytes, true);
  for (int i = 0; i < 16; ++i) {
    (void)big_catalog.AddFile("movie" + std::to_string(i), Megabits(2),
                              Duration::Seconds(1800), DiskId(static_cast<uint32_t>(i % 32)));
  }
  SystemShape big_old{8, 4, 4};
  SystemShape big_new{12, 4, 4};
  RestripePlan big_plan =
      PlanRestripe(big_catalog, StripeLayout(big_old), StripeLayout(big_new));
  double big_seconds = EstimateRestripeSeconds(big_plan, big_new, disk_rate, nic_rate);
  std::printf("same experiment at 2x system size (2x content): %.0f s — restripe time is a\n"
              "property of the cubs, not of the system (\"the time to restripe a system\n"
              "does not depend on the size of the system\", §2.2)\n",
              big_seconds);
  return 0;
}
