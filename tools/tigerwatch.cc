// tigerwatch: inspect tiger-incident-v1 bundles and SLO state.
//
//   tigerwatch <bundle-dir>          explain one incident bundle
//   tigerwatch <slo_state.json>      render a tiger-slo-v1 document
//   tigerwatch --list <dir>          one line per incident_* bundle under dir
//
// A bundle is the directory TigerSystem::DumpIncident writes (see
// src/obs/incident.h for the layout): the flight-recorder window, state
// checkpoints, SLO burn state, QoS/audit reports and the byte-exact scenario
// descriptor. tigerwatch turns that into a post-mortem summary and prints the
// exact replay_scenario command that reproduces the run.
//
// Standard library only (mini_json.h is header-only); usable on artifacts
// copied off CI without any tiger build present.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/mini_json.h"

namespace {

using tiger::JsonValue;

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return "";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// First "<key> <rest>" line of an outcome.txt-style document, or "".
std::string OutcomeField(const std::string& text, const std::string& key) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string line = text.substr(pos, end - pos);
    if (line.rfind(key + " ", 0) == 0) {
      return line.substr(key.size() + 1);
    }
    pos = end + 1;
  }
  return "";
}

double Num(const JsonValue& root, const std::string& path) {
  const JsonValue* v = root.FindPath(path);
  return v != nullptr && v->type == JsonValue::Type::kNumber ? v->number : 0.0;
}

std::string Str(const JsonValue& root, const std::string& path) {
  const JsonValue* v = root.FindPath(path);
  return v != nullptr && v->type == JsonValue::Type::kString ? v->str : "";
}

void PrintSlo(const JsonValue& slo, const char* indent) {
  const double budget = Num(slo, "budget.glitch_per_block");
  const double burn_short = Num(slo, "fleet.burn_short");
  const double burn_long = Num(slo, "fleet.burn_long");
  std::printf("%sbudget   %.4f glitches/block fleet, %.4f per viewer\n", indent, budget,
              Num(slo, "budget.viewer_glitch_per_block"));
  std::printf("%swindows  short %.0fs (alert at %.0fx), long %.0fs (alert at %.0fx)\n", indent,
              Num(slo, "budget.short_window_us") / 1e6, Num(slo, "budget.fast_burn"),
              Num(slo, "budget.long_window_us") / 1e6, Num(slo, "budget.slow_burn"));
  std::printf("%sfleet    %.0f blocks, %.0f glitches; burn short %.2fx long %.2fx\n", indent,
              Num(slo, "fleet.blocks"), Num(slo, "fleet.glitches"), burn_short, burn_long);
  std::printf("%sworst    viewer %.0f at %.2fx of its whole-run budget\n", indent,
              Num(slo, "worst_viewer.viewer"), Num(slo, "worst_viewer.burn"));
  const double ticks = Num(slo, "breaches.ticks");
  if (ticks > 0) {
    std::printf("%sbreach   %.0f tick(s); first '%s' at %.3fs\n", indent, ticks,
                Str(slo, "breaches.first_reason").c_str(), Num(slo, "breaches.first_us") / 1e6);
  } else {
    std::printf("%sbreach   none\n", indent);
  }
  const JsonValue* probes = slo.Find("probes");
  if (probes != nullptr && probes->type == JsonValue::Type::kObject &&
      !probes->object.empty()) {
    std::printf("%sprobes  ", indent);
    for (const auto& [name, value] : probes->object) {
      std::printf(" %s=%.0f", name.c_str(), value.number);
    }
    std::printf("\n");
  }
}

int ExplainBundle(const std::string& dir) {
  const std::string manifest_path = dir + "/manifest.json";
  JsonValue root;
  std::string error;
  if (!tiger::LoadJsonFile(manifest_path, &root, &error)) {
    std::fprintf(stderr, "tigerwatch: %s\n", error.c_str());
    return 2;
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->str != "tiger-incident-v1") {
    std::fprintf(stderr, "tigerwatch: %s: not a tiger-incident-v1 manifest\n",
                 manifest_path.c_str());
    return 2;
  }
  std::printf("incident %s\n", dir.c_str());
  std::printf("reason   %s\n", Str(root, "reason").c_str());
  std::printf("when     %.3fs sim time\n", Num(root, "sim_time_us") / 1e6);
  std::printf("run      seed=%.0f cubs=%.0f engine=%s shards=%.0f\n", Num(root, "seed"),
              Num(root, "cubs"), Str(root, "engine").c_str(), Num(root, "shards"));

  const std::string outcome = ReadFileOrEmpty(dir + "/outcome.txt");
  std::string verdict;
  if (!outcome.empty()) {
    verdict = OutcomeField(outcome, "verdict");
    std::printf("verdict  %s (survivable=%s, late=%s lost=%s of %s blocks)\n", verdict.c_str(),
                OutcomeField(outcome, "survivable").c_str(),
                OutcomeField(outcome, "late_blocks").c_str(),
                OutcomeField(outcome, "lost_blocks").c_str(),
                OutcomeField(outcome, "blocks_complete").c_str());
  }

  const JsonValue* slo = root.Find("slo");
  if (slo != nullptr && slo->type == JsonValue::Type::kObject) {
    std::printf("\nslo state at capture:\n");
    PrintSlo(*slo, "  ");
  }

  std::printf("\nfiles:\n");
  const JsonValue* files = root.Find("files");
  if (files != nullptr && files->type == JsonValue::Type::kArray) {
    for (const JsonValue& f : files->array) {
      std::error_code ec;
      const auto size = std::filesystem::file_size(dir + "/" + f.str, ec);
      if (ec) {
        std::printf("  %-20s MISSING\n", f.str.c_str());
      } else {
        std::printf("  %-20s %8llu bytes\n", f.str.c_str(),
                    static_cast<unsigned long long>(size));
      }
    }
  }

  std::error_code ec;
  if (std::filesystem::exists(dir + "/scenario.txt", ec)) {
    std::printf("\nreplay:\n  replay_scenario --file=%s/scenario.txt", dir.c_str());
    if (!verdict.empty()) {
      std::printf(" --expect=%s", verdict.c_str());
    }
    std::printf("\n");
  }
  if (std::filesystem::exists(dir + "/flight_trace.json", ec)) {
    std::printf("\nopen %s/flight_trace.json in https://ui.perfetto.dev for the window "
                "before capture\n",
                dir.c_str());
  }
  return 0;
}

int RenderSloFile(const std::string& path) {
  JsonValue root;
  std::string error;
  if (!tiger::LoadJsonFile(path, &root, &error)) {
    std::fprintf(stderr, "tigerwatch: %s\n", error.c_str());
    return 2;
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->str != "tiger-slo-v1") {
    std::fprintf(stderr, "tigerwatch: %s: not a tiger-slo-v1 document\n", path.c_str());
    return 2;
  }
  std::printf("slo state %s (at %.3fs, %.0f evals)\n", path.c_str(), Num(root, "now_us") / 1e6,
              Num(root, "evals"));
  PrintSlo(root, "  ");
  return 0;
}

int ListBundles(const std::string& parent) {
  std::error_code ec;
  std::vector<std::string> dirs;
  for (const auto& entry : std::filesystem::directory_iterator(parent, ec)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("incident_", 0) == 0) {
      dirs.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "tigerwatch: cannot list %s\n", parent.c_str());
    return 2;
  }
  std::sort(dirs.begin(), dirs.end());
  if (dirs.empty()) {
    std::printf("no incident_* bundles under %s\n", parent.c_str());
    return 0;
  }
  for (const std::string& dir : dirs) {
    JsonValue root;
    std::string error;
    if (!tiger::LoadJsonFile(dir + "/manifest.json", &root, &error)) {
      std::printf("%-40s (unreadable manifest)\n", dir.c_str());
      continue;
    }
    const std::string verdict =
        OutcomeField(ReadFileOrEmpty(dir + "/outcome.txt"), "verdict");
    std::printf("%-40s reason=%s at=%.3fs seed=%.0f%s%s\n", dir.c_str(),
                Str(root, "reason").c_str(), Num(root, "sim_time_us") / 1e6, Num(root, "seed"),
                verdict.empty() ? "" : " verdict=", verdict.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tigerwatch <bundle-dir>\n"
               "       tigerwatch <slo_state.json>\n"
               "       tigerwatch --list <dir>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) {
    return Usage();
  }
  if (list) {
    return ListBundles(positional[0]);
  }
  std::error_code ec;
  if (std::filesystem::is_directory(positional[0], ec)) {
    return ExplainBundle(positional[0]);
  }
  return RenderSloFile(positional[0]);
}
