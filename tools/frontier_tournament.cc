// Fault-frontier tournament driver.
//
//   frontier_tournament [--quick] [--seed=N] [--json=frontier.json]
//                       [--families=a,b,c] [--max-cardinality=K]
//                       [--max-runs=N] [--weaken=no-reforward|no-backup]
//                       [--jobs=N]
//
// Runs the budgeted frontier search (src/frontier/search.h) and writes the
// canonical survivability envelope. Same flags + same seed => byte-identical
// JSON. The human-readable report goes to stdout, per-run progress to stderr.
// --jobs=N prefetches scenario outcomes on N threads; it changes wall clock
// only — the envelope (and its JSON) is byte-identical for every jobs value,
// which tests/frontier_test.cc asserts.
//
// To regenerate the committed CI baseline after an intentional change
// (documented in EXPERIMENTS.md E17):
//   build/tools/frontier_tournament --quick --seed=1 \
//       --json=bench/baselines/FRONTIER.json
//
// --weaken deliberately cripples a recovery path (single forwarding with no
// failure re-forwarding, or no warm-standby controller) so the envelope
// shrinks — the proof that the frontier_compare gate actually bites.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/frontier/envelope.h"
#include "src/frontier/search.h"

namespace {

std::string FlagValue(int argc, char** argv, const std::string& flag) {
  const std::string prefix = "--" + flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return "";
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  const std::string name = "--" + flag;
  for (int i = 1; i < argc; ++i) {
    if (name == argv[i]) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t comma = text.find(',', pos);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > pos) {
      out.push_back(text.substr(pos, end - pos));
    }
    pos = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tiger::frontier::FrontierOptions options;
  options.quick = HasFlag(argc, argv, "quick");
  const std::string seed = FlagValue(argc, argv, "seed");
  if (!seed.empty()) {
    options.seed = std::strtoull(seed.c_str(), nullptr, 10);
  }
  const std::string max_cardinality = FlagValue(argc, argv, "max-cardinality");
  if (!max_cardinality.empty()) {
    options.max_cardinality = std::atoi(max_cardinality.c_str());
  }
  const std::string max_runs = FlagValue(argc, argv, "max-runs");
  if (!max_runs.empty()) {
    options.max_runs = std::atoi(max_runs.c_str());
  }
  const std::string jobs = FlagValue(argc, argv, "jobs");
  if (!jobs.empty()) {
    options.jobs = std::atoi(jobs.c_str());
    if (options.jobs < 1) {
      std::fprintf(stderr, "frontier_tournament: --jobs must be >= 1\n");
      return 2;
    }
  }
  options.families = SplitCommas(FlagValue(argc, argv, "families"));
  const std::string weaken = FlagValue(argc, argv, "weaken");
  if (weaken == "no-reforward") {
    options.weaken_no_reforward = true;
  } else if (weaken == "no-backup") {
    options.weaken_no_backup = true;
  } else if (!weaken.empty()) {
    std::fprintf(stderr, "frontier_tournament: unknown --weaken=%s\n", weaken.c_str());
    return 2;
  }
  options.progress = [](const std::string& line) {
    std::fprintf(stderr, "%s\n", line.c_str());
  };

  const tiger::frontier::FrontierEnvelope envelope = tiger::frontier::RunTournament(options);
  std::printf("%s", tiger::frontier::EnvelopeReport(envelope).c_str());

  const std::string json_path = FlagValue(argc, argv, "json");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "frontier_tournament: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << tiger::frontier::EnvelopeJson(envelope);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
