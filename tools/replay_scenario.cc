// Replays one scenario descriptor and prints its outcome.
//
//   replay_scenario --file=scenario.txt [--expect=<verdict>] [--trace=t.json]
//                   [--audit-report=a.json] [--incident-dir=dir]
//
// The descriptor text format is ScenarioDescriptor::ToText() — exactly what
// frontier.json embeds under "counterexamples[].descriptor" (unescape the
// JSON string, or copy the block a failing CI run prints). Replays are
// deterministic: the same descriptor always reproduces the same verdict and
// counters.
//
// With --expect, exits nonzero unless the replayed verdict matches — this is
// how the frontier smoke test pins every published counterexample to its
// recorded verdict. --trace/--audit-report dump the Chrome trace (with the
// LIVELOCK_DEADMAN instants on the frontier track) and the auditor's
// divergence report for post-mortem. --incident-dir arms the flight recorder
// and SLO monitor: a breach (or a bad final verdict) writes a
// tiger-incident-v1 bundle under that directory (inspect with tigerwatch).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/frontier/runner.h"
#include "src/frontier/scenario.h"

namespace {

std::string FlagValue(int argc, char** argv, const std::string& flag) {
  const std::string prefix = "--" + flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = FlagValue(argc, argv, "file");
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: replay_scenario --file=<descriptor.txt> [--expect=<verdict>]\n"
                 "                       [--trace=<trace.json>] [--audit-report=<report.json>]\n"
                 "                       [--incident-dir=<dir>]\n");
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay_scenario: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  auto parsed = tiger::frontier::ScenarioDescriptor::Parse(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "replay_scenario: %s\n", parsed.status().message().c_str());
    return 2;
  }
  const tiger::frontier::ScenarioDescriptor descriptor = parsed.value();

  tiger::frontier::RunOptions options;
  options.trace_path = FlagValue(argc, argv, "trace");
  options.audit_report_path = FlagValue(argc, argv, "audit-report");
  options.incident_dir = FlagValue(argc, argv, "incident-dir");
  const tiger::frontier::ScenarioOutcome outcome =
      tiger::frontier::RunScenario(descriptor, options);

  std::printf("family %s seed %llu\n%s", descriptor.family.c_str(),
              static_cast<unsigned long long>(descriptor.seed),
              tiger::frontier::OutcomeSummary(outcome).c_str());

  const std::string expect = FlagValue(argc, argv, "expect");
  if (!expect.empty()) {
    const tiger::frontier::Verdict expected = tiger::frontier::ParseVerdict(expect);
    if (expected == tiger::frontier::Verdict::kVerdictCount) {
      std::fprintf(stderr, "replay_scenario: unknown verdict '%s'\n", expect.c_str());
      return 2;
    }
    if (outcome.verdict != expected) {
      std::fprintf(stderr, "replay_scenario: verdict %s does not match expected %s\n",
                   tiger::frontier::VerdictName(outcome.verdict), expect.c_str());
      return 1;
    }
    std::printf("verdict matches expectation (%s)\n", expect.c_str());
  }
  return 0;
}
