// Survivability regression gate: diff a fresh frontier.json against the
// committed baseline and exit nonzero when the envelope shrank.
//
//   frontier_compare --baseline=bench/baselines/FRONTIER.json
//                    --current=frontier.json
//
// A regression is: a baseline family missing from the current run, a family's
// max survivable cardinality decreasing, or a counterexample appearing at a
// cardinality the baseline had proven survivable. Larger frontiers and new
// families are reported as informational only — the gate is one-sided, like
// bench_compare's perf gate.
//
// To accept an intentional envelope change, regenerate the baseline with
// frontier_tournament (see EXPERIMENTS.md E17) and commit it.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/frontier/envelope.h"

namespace {

std::string FlagValue(int argc, char** argv, const std::string& flag) {
  const std::string prefix = "--" + flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return "";
}

bool LoadEnvelope(const std::string& path, tiger::frontier::FrontierEnvelope* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "frontier_compare: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = tiger::frontier::ParseEnvelopeJson(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "frontier_compare: %s: %s\n", path.c_str(),
                 parsed.status().message().c_str());
    return false;
  }
  *out = parsed.value();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string baseline_path = FlagValue(argc, argv, "baseline");
  const std::string current_path = FlagValue(argc, argv, "current");
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr, "usage: frontier_compare --baseline=<json> --current=<json>\n");
    return 2;
  }

  tiger::frontier::FrontierEnvelope baseline;
  tiger::frontier::FrontierEnvelope current;
  if (!LoadEnvelope(baseline_path, &baseline) || !LoadEnvelope(current_path, &current)) {
    return 2;
  }

  for (const tiger::frontier::EnvelopeFamily& family : current.families) {
    const tiger::frontier::EnvelopeFamily* base = baseline.Find(family.name);
    if (base == nullptr) {
      std::printf("NEW      %-20s max_survivable=%d (not in baseline; informational)\n",
                  family.name.c_str(), family.max_survivable);
    } else if (family.max_survivable > base->max_survivable) {
      std::printf("GREW     %-20s max_survivable %d -> %d (informational)\n",
                  family.name.c_str(), base->max_survivable, family.max_survivable);
    } else {
      std::printf("OK       %-20s max_survivable=%d%s\n", family.name.c_str(),
                  family.max_survivable, family.saturated ? " (saturated)" : "");
    }
  }

  const std::vector<std::string> regressions =
      tiger::frontier::CompareEnvelopes(baseline, current);
  for (const std::string& regression : regressions) {
    std::printf("REGRESS  %s\n", regression.c_str());
  }
  if (!regressions.empty()) {
    std::printf("frontier_compare: %d regression(s) — survivability envelope shrank\n",
                static_cast<int>(regressions.size()));
    return 1;
  }
  std::printf("frontier_compare: no regressions across %d famil%s\n",
              static_cast<int>(baseline.families.size()),
              baseline.families.size() == 1 ? "y" : "ies");
  return 0;
}
