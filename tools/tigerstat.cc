// tigerstat: explain where a run's wall-clock time went.
//
//   tigerstat <profile.json> [--topk=N] [--scale=BENCH_scale.json]
//   tigerstat --diff <a.json> <b.json>
//
// Reads the tiger-profile-v1 document TigerSystem::WriteProfile emits (see
// docs/EXPERIMENTS.md E18): deterministic category/engine counts plus the
// machine-dependent nanosecond attribution. Prints the top-k cost categories,
// the engine's barrier breakdown (stall fraction, window utilization), the
// per-shard imbalance, and a concrete sim_shards/sim_threads recommendation.
// --diff compares two profiles category by category — the quickest way to see
// what a change made cheaper or more frequent.
//
// Standard library only (mini_json.h is header-only); usable on artifacts
// copied off CI without any tiger build present.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/mini_json.h"

namespace {

using tiger::JsonValue;

struct Profile {
  std::string path;
  std::string engine;
  int shards = 1;
  int threads = 1;
  long long window_us = 0;
  int cubs = 0;
  long long seed = 0;
  double processed_events = 0;
  double clamped_posts = 0;
  double total_run_ns = 0;
  // Parallel arrays in document (= enum) order.
  std::vector<std::string> category_names;
  std::vector<double> category_counts;
  std::vector<double> category_self_ns;
  // counts.engine
  double windows = 0, busy_windows = 0, posts_merged = 0, journal_entries = 0;
  double periodic_fires = 0, hook_runs = 0;
  double event_imbalance_mean = 0, event_imbalance_max = 0, window_utilization = 0;
  // times_ns.engine
  double driver_busy_ns = 0, barrier_wait_ns = 0, merge_posts_ns = 0;
  double journal_replay_ns = 0, periodic_tasks_ns = 0, span_ns = 0;
  // derived
  double attributed_fraction = 0, barrier_stall_fraction = 0, driver_busy_fraction = 0;
  double busy_imbalance_mean = 0, busy_imbalance_max = 0;
  std::vector<double> per_shard_events;
  std::vector<double> per_shard_busy_ns;
};

double Num(const JsonValue& root, const std::string& path) {
  const JsonValue* v = root.FindPath(path);
  return v != nullptr && v->type == JsonValue::Type::kNumber ? v->number : 0.0;
}

void NumArray(const JsonValue& root, const std::string& path, std::vector<double>* out) {
  const JsonValue* v = root.FindPath(path);
  if (v == nullptr || v->type != JsonValue::Type::kArray) {
    return;
  }
  for (const JsonValue& e : v->array) {
    out->push_back(e.number);
  }
}

bool LoadProfile(const std::string& path, Profile* p, std::string* error) {
  JsonValue root;
  if (!tiger::LoadJsonFile(path, &root, error)) {
    return false;
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->str != "tiger-profile-v1") {
    *error = path + ": not a tiger-profile-v1 document";
    return false;
  }
  p->path = path;
  const JsonValue* engine = root.Find("engine");
  p->engine = engine != nullptr ? engine->str : "?";
  p->shards = static_cast<int>(Num(root, "shards"));
  p->threads = static_cast<int>(Num(root, "threads"));
  p->window_us = static_cast<long long>(Num(root, "window_us"));
  p->cubs = static_cast<int>(Num(root, "cubs"));
  p->seed = static_cast<long long>(Num(root, "seed"));
  p->processed_events = Num(root, "counts.processed_events");
  p->clamped_posts = Num(root, "counts.clamped_posts");
  p->total_run_ns = Num(root, "times_ns.total_run_ns");
  const JsonValue* counts = root.FindPath("counts.categories");
  const JsonValue* times = root.FindPath("times_ns.categories_self_ns");
  if (counts == nullptr || times == nullptr) {
    *error = path + ": missing counts.categories / times_ns.categories_self_ns";
    return false;
  }
  // std::map iteration is name-ordered, not enum-ordered; that is fine — the
  // name is carried alongside and display order is by cost anyway.
  for (const auto& [name, value] : counts->object) {
    p->category_names.push_back(name);
    p->category_counts.push_back(value.number);
    const JsonValue* t = times->Find(name);
    p->category_self_ns.push_back(t != nullptr ? t->number : 0.0);
  }
  p->windows = Num(root, "counts.engine.windows");
  p->busy_windows = Num(root, "counts.engine.busy_windows");
  p->posts_merged = Num(root, "counts.engine.posts_merged");
  p->journal_entries = Num(root, "counts.engine.journal_entries");
  p->periodic_fires = Num(root, "counts.engine.periodic_fires");
  p->hook_runs = Num(root, "counts.engine.hook_runs");
  p->event_imbalance_mean = Num(root, "counts.event_imbalance_mean");
  p->event_imbalance_max = Num(root, "counts.event_imbalance_max");
  p->window_utilization = Num(root, "counts.window_utilization");
  p->driver_busy_ns = Num(root, "times_ns.engine.driver_busy_ns");
  p->barrier_wait_ns = Num(root, "times_ns.engine.barrier_wait_ns");
  p->merge_posts_ns = Num(root, "times_ns.engine.merge_posts_ns");
  p->journal_replay_ns = Num(root, "times_ns.engine.journal_replay_ns");
  p->periodic_tasks_ns = Num(root, "times_ns.engine.periodic_tasks_ns");
  p->span_ns = Num(root, "times_ns.engine.span_ns");
  p->attributed_fraction = Num(root, "derived.attributed_fraction");
  p->barrier_stall_fraction = Num(root, "derived.barrier_stall_fraction");
  p->driver_busy_fraction = Num(root, "derived.driver_busy_fraction");
  p->busy_imbalance_mean = Num(root, "derived.busy_imbalance_mean");
  p->busy_imbalance_max = Num(root, "derived.busy_imbalance_max");
  NumArray(root, "counts.per_shard_events", &p->per_shard_events);
  NumArray(root, "times_ns.per_shard_busy_ns", &p->per_shard_busy_ns);
  return true;
}

double Pct(double num, double den) { return den > 0 ? 100.0 * num / den : 0.0; }

void PrintHeader(const Profile& p) {
  std::printf("profile  %s\n", p.path.c_str());
  std::printf("run      engine=%s shards=%d threads=%d window_us=%lld cubs=%d seed=%lld\n",
              p.engine.c_str(), p.shards, p.threads, p.window_us, p.cubs, p.seed);
  const double wall_s = p.total_run_ns / 1e9;
  std::printf("work     events=%.0f  wall=%.3fs  events/sec=%.0f  clamped_posts=%.0f\n",
              p.processed_events, wall_s,
              wall_s > 0 ? p.processed_events / wall_s : 0.0, p.clamped_posts);
  std::printf("cover    attributed %.1f%% of wall time\n", 100.0 * p.attributed_fraction);
}

void PrintTopCategories(const Profile& p, int topk) {
  std::vector<size_t> order(p.category_names.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return p.category_self_ns[a] > p.category_self_ns[b];
  });
  std::printf("\ntop categories by self time:\n");
  std::printf("  %-22s %12s %7s %14s %10s\n", "category", "self_ms", "%wall", "count",
              "ns/op");
  int shown = 0;
  for (size_t i : order) {
    if (shown >= topk) {
      break;
    }
    if (p.category_self_ns[i] <= 0 && p.category_counts[i] <= 0) {
      continue;
    }
    std::printf("  %-22s %12.2f %6.1f%% %14.0f %10.0f\n", p.category_names[i].c_str(),
                p.category_self_ns[i] / 1e6, Pct(p.category_self_ns[i], p.total_run_ns),
                p.category_counts[i],
                p.category_counts[i] > 0 ? p.category_self_ns[i] / p.category_counts[i] : 0.0);
    shown++;
  }
  if (shown == 0) {
    std::printf("  (no nonzero categories — was profiling enabled for the run?)\n");
  }
}

void PrintEngineSection(const Profile& p) {
  if (p.engine != "sharded") {
    return;
  }
  std::printf("\nengine breakdown (driver perspective, %% of wall):\n");
  std::printf("  driver busy   %6.1f%%   (%.2f ms across %.0f windows)\n",
              Pct(p.driver_busy_ns, p.total_run_ns), p.driver_busy_ns / 1e6, p.windows);
  std::printf("  barrier wait  %6.1f%%   (%.2f ms; stall waiting for worker threads)\n",
              Pct(p.barrier_wait_ns, p.total_run_ns), p.barrier_wait_ns / 1e6);
  std::printf("  merge posts   %6.1f%%   (%.0f cross-shard posts)\n",
              Pct(p.merge_posts_ns, p.total_run_ns), p.posts_merged);
  std::printf("  journal       %6.1f%%   (%.0f entries)\n",
              Pct(p.journal_replay_ns, p.total_run_ns), p.journal_entries);
  std::printf("  periodic      %6.1f%%   (%.0f task fires, %.0f hook runs)\n",
              Pct(p.periodic_tasks_ns, p.total_run_ns), p.periodic_fires, p.hook_runs);
  std::printf("  window utilization %.2f (%.0f of %.0f windows dispatched events)\n",
              p.window_utilization, p.busy_windows, p.windows);
  std::printf("\nshard balance (max-shard / mean-shard, per busy window):\n");
  std::printf("  by events     mean %.2f  worst %.2f   (deterministic)\n",
              p.event_imbalance_mean, p.event_imbalance_max);
  std::printf("  by busy time  mean %.2f  worst %.2f   (machine-dependent)\n",
              p.busy_imbalance_mean, p.busy_imbalance_max);
  if (!p.per_shard_events.empty()) {
    std::printf("  per-shard events  [");
    for (size_t i = 0; i < p.per_shard_events.size(); ++i) {
      std::printf("%s%.0f", i == 0 ? "" : ", ", p.per_shard_events[i]);
    }
    std::printf("]\n  per-shard busy_ms [");
    for (size_t i = 0; i < p.per_shard_busy_ns.size(); ++i) {
      std::printf("%s%.1f", i == 0 ? "" : ", ", p.per_shard_busy_ns[i] / 1e6);
    }
    std::printf("]\n");
  }
}

// Mirrors TigerConfig::AutoShardCount (tools must stay stdlib-only, so the
// policy is restated here; keep the two in sync).
int AutoShardCount(int num_cubs, int hardware_threads) {
  int shards = std::min(hardware_threads, num_cubs / 12);
  if (shards < 1) {
    shards = 1;
  }
  return std::min(shards, 256);
}

void PrintRecommendation(const Profile& p) {
  std::printf("\nrecommendation:\n");
  if (p.engine != "sharded") {
    const int upper = AutoShardCount(p.cubs, 256);
    if (upper <= 1) {
      std::printf("  serial run; %d cubs is too small to shard (< 24 cubs:\n", p.cubs);
      std::printf("  ring segments under ~12 cubs make most neighbor hops cross-shard).\n");
    } else {
      std::printf("  serial run; this workload can use up to sim_shards=%d.\n", upper);
      std::printf("  set sim_shards=0 and sim_threads=0 to auto-tune for the host\n");
      std::printf("  (picks min(hardware threads, cubs/12); scale_sweep --threads does this).\n");
    }
    return;
  }
  const double stall = p.barrier_stall_fraction;
  if (p.clamped_posts > 0) {
    std::printf("  WARNING: %.0f clamped posts — lookahead contract violated; the\n",
                p.clamped_posts);
    std::printf("  profile explains a run the engine had to degrade. Fix that first.\n");
  }
  if (stall > 0.30 && p.busy_imbalance_mean > 1.5) {
    std::printf("  barrier stall is %.0f%% of wall and shards are imbalanced\n", 100 * stall);
    std::printf("  (busy-time max/mean %.2f): the driver waits on one hot shard.\n",
                p.busy_imbalance_mean);
    std::printf("  try fewer shards (sim_shards=%d) so segments even out, or rebalance\n",
                std::max(1, p.shards / 2));
    std::printf("  the cub->shard map (event imbalance %.2f says the load itself is %s).\n",
                p.event_imbalance_mean,
                p.event_imbalance_mean > 1.5 ? "skewed" : "even — overhead skew, not load");
  } else if (stall > 0.30) {
    std::printf("  barrier stall is %.0f%% of wall with even shards: windows are too\n",
                100 * stall);
    std::printf("  empty (utilization %.2f) for this thread count. Try sim_threads=%d\n",
                p.window_utilization, std::max(1, p.threads / 2));
    std::printf("  or fewer shards; per-window work must outweigh the barrier hand-off.\n");
  } else if (p.threads < p.shards && stall < 0.10) {
    std::printf("  barrier stall is only %.1f%% of wall and threads (%d) < shards (%d):\n",
                100 * stall, p.threads, p.shards);
    std::printf("  there is headroom — try sim_threads=%d.\n", p.shards);
  } else {
    std::printf("  sim_shards=%d sim_threads=%d look reasonable for this run\n", p.shards,
                p.threads);
    std::printf("  (stall %.1f%%, utilization %.2f, busy-time imbalance %.2f).\n", 100 * stall,
                p.window_utilization, p.busy_imbalance_mean);
  }
}

void PrintScaleContext(const std::string& path) {
  JsonValue root;
  std::string error;
  if (!tiger::LoadJsonFile(path, &root, &error)) {
    std::fprintf(stderr, "tigerstat: %s (ignoring --scale)\n", error.c_str());
    return;
  }
  const JsonValue* results = root.Find("results");
  if (results == nullptr || results->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "tigerstat: %s: no results array (ignoring --scale)\n", path.c_str());
    return;
  }
  std::printf("\nscale-sweep context (%s):\n", path.c_str());
  std::printf("  %-28s %14s %12s\n", "workload", "events/sec", "allocs/ev");
  for (const JsonValue& entry : results->array) {
    const JsonValue* name = entry.Find("name");
    const JsonValue* eps = entry.Find("events_per_sec");
    const JsonValue* ape = entry.Find("allocs_per_event");
    if (name == nullptr || eps == nullptr) {
      continue;
    }
    std::printf("  %-28s %14.0f %12.4f\n", name->str.c_str(), eps->number,
                ape != nullptr ? ape->number : 0.0);
  }
}

int RunDiff(const std::string& path_a, const std::string& path_b) {
  Profile a, b;
  std::string error;
  if (!LoadProfile(path_a, &a, &error) || !LoadProfile(path_b, &b, &error)) {
    std::fprintf(stderr, "tigerstat: %s\n", error.c_str());
    return 2;
  }
  std::printf("diff     a=%s\n         b=%s\n", a.path.c_str(), b.path.c_str());
  std::printf("run      a: engine=%s shards=%d threads=%d seed=%lld events=%.0f wall=%.3fs\n",
              a.engine.c_str(), a.shards, a.threads, a.seed, a.processed_events,
              a.total_run_ns / 1e9);
  std::printf("         b: engine=%s shards=%d threads=%d seed=%lld events=%.0f wall=%.3fs\n",
              b.engine.c_str(), b.shards, b.threads, b.seed, b.processed_events,
              b.total_run_ns / 1e9);
  if (a.shards != b.shards || a.seed != b.seed) {
    std::printf("note     different %s: count deltas reflect that, not a code change\n",
                a.seed != b.seed ? "seeds" : "shard counts");
  }
  std::printf("\n  %-22s %14s %14s %8s %12s %12s %8s\n", "category", "count_a", "count_b",
              "d%", "self_ms_a", "self_ms_b", "d%");
  // Align by name over the *union* of both documents' categories: the two
  // may come from different schema revisions with categories added or
  // removed, and a category only one side knows must show as n/a, not as a
  // silent zero (or be dropped entirely when only b has it).
  std::vector<std::string> names = a.category_names;
  for (const std::string& name : b.category_names) {
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  auto index_of = [](const Profile& p, const std::string& name) -> int {
    for (size_t j = 0; j < p.category_names.size(); ++j) {
      if (p.category_names[j] == name) {
        return static_cast<int>(j);
      }
    }
    return -1;
  };
  for (const std::string& name : names) {
    const int ia = index_of(a, name);
    const int ib = index_of(b, name);
    const double count_a = ia >= 0 ? a.category_counts[ia] : 0;
    const double count_b = ib >= 0 ? b.category_counts[ib] : 0;
    const double ns_a = ia >= 0 ? a.category_self_ns[ia] : 0;
    const double ns_b = ib >= 0 ? b.category_self_ns[ib] : 0;
    if (ia >= 0 && ib >= 0 && count_a == 0 && count_b == 0) {
      continue;
    }
    char ca[32], cb[32], ma[32], mb[32], dc[32], dt[32];
    if (ia >= 0) {
      std::snprintf(ca, sizeof(ca), "%.0f", count_a);
      std::snprintf(ma, sizeof(ma), "%.2f", ns_a / 1e6);
    } else {
      std::snprintf(ca, sizeof(ca), "n/a");
      std::snprintf(ma, sizeof(ma), "n/a");
    }
    if (ib >= 0) {
      std::snprintf(cb, sizeof(cb), "%.0f", count_b);
      std::snprintf(mb, sizeof(mb), "%.2f", ns_b / 1e6);
    } else {
      std::snprintf(cb, sizeof(cb), "n/a");
      std::snprintf(mb, sizeof(mb), "n/a");
    }
    // Percent deltas only make sense when both sides have the category and
    // the baseline is nonzero.
    if (ia >= 0 && ib >= 0 && count_a > 0) {
      std::snprintf(dc, sizeof(dc), "%+7.1f%%", 100.0 * (count_b - count_a) / count_a);
    } else {
      std::snprintf(dc, sizeof(dc), "%8s", "-");
    }
    if (ia >= 0 && ib >= 0 && ns_a > 0) {
      std::snprintf(dt, sizeof(dt), "%+7.1f%%", 100.0 * (ns_b - ns_a) / ns_a);
    } else {
      std::snprintf(dt, sizeof(dt), "%8s", "-");
    }
    std::printf("  %-22s %14s %14s %s %12s %12s %s\n", name.c_str(), ca, cb, dc, ma, mb, dt);
  }
  std::printf("\n  %-22s %14.3f %14.3f\n", "barrier_stall_frac", a.barrier_stall_fraction,
              b.barrier_stall_fraction);
  std::printf("  %-22s %14.3f %14.3f\n", "attributed_frac", a.attributed_fraction,
              b.attributed_fraction);
  std::printf("  %-22s %14.2f %14.2f\n", "event_imbalance_mean", a.event_imbalance_mean,
              b.event_imbalance_mean);
  const double eps_a = a.total_run_ns > 0 ? a.processed_events / (a.total_run_ns / 1e9) : 0;
  const double eps_b = b.total_run_ns > 0 ? b.processed_events / (b.total_run_ns / 1e9) : 0;
  std::printf("  %-22s %14.0f %14.0f %+7.1f%%\n", "events_per_sec", eps_a, eps_b,
              eps_a > 0 ? 100.0 * (eps_b - eps_a) / eps_a : 0.0);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tigerstat <profile.json> [--topk=N] [--scale=BENCH_scale.json]\n"
               "       tigerstat --diff <a.json> <b.json>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string scale_path;
  int topk = 8;
  bool diff = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diff") {
      diff = true;
    } else if (arg.rfind("--topk=", 0) == 0) {
      topk = std::atoi(arg.c_str() + std::strlen("--topk="));
      if (topk < 1) {
        return Usage();
      }
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale_path = arg.substr(std::strlen("--scale="));
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (diff) {
    if (positional.size() != 2) {
      return Usage();
    }
    return RunDiff(positional[0], positional[1]);
  }
  if (positional.size() != 1) {
    return Usage();
  }
  Profile p;
  std::string error;
  if (!LoadProfile(positional[0], &p, &error)) {
    std::fprintf(stderr, "tigerstat: %s\n", error.c_str());
    return 2;
  }
  PrintHeader(p);
  PrintTopCategories(p, topk);
  PrintEngineSection(p);
  PrintRecommendation(p);
  if (!scale_path.empty()) {
    PrintScaleContext(scale_path);
  }
  return 0;
}
